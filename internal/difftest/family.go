// Batched campaign execution over mutation families (ROADMAP item 4's
// third layer): instead of generating a fresh program per seed, the
// campaign partitions its seed space into families of FamilySize
// consecutive seeds. Each family generates ONE base program from its
// first seed, hoists the scalar constants of main into entry-function
// arguments, and then differentially tests every member on its own
// argument vector — member 0 on the original constants, later members
// on deterministically mutated ones. Batched execution (Batched=true)
// then shares everything that depends only on the module across the
// family: one verify, one pass-pipeline compilation per configuration,
// and one interp.Compile per compiled configuration, with members run
// through Interpreter.RunProgramArgs. The unbatched strategy runs the
// identical members through the full per-member pipeline and is the
// yardstick: verdicts, journals and ReportText are byte-identical
// between the two strategies, which the determinism tests and the CI
// step pin.
package difftest

import (
	"context"
	"fmt"
	"math/rand"

	"ratte/internal/compiler"
	"ratte/internal/dialects"
	"ratte/internal/gen"
	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/verify"
)

// maxFamilyParams caps how many constants are hoisted into entry
// arguments: enough to open a useful mutation space, small enough that
// argument vectors stay cheap to build and journal-independent.
const maxFamilyParams = 8

// familyMaxSteps bounds every family execution (reference and
// compiled): mutated constants can steer a program into far longer
// runs than the generator planned, and a member that blows the budget
// is skipped, not wedged.
const familyMaxSteps = 2_000_000

// familyActive reports whether the campaign runs in family mode.
// Family mode requires fault-free, unbounded attempts — the shared
// stages of a batch cannot be attributed to one member's injector or
// deadline — so with Faults or a Timeout configured the classic
// per-seed campaign runs instead. Plan mode also disables it: a family
// varies the program under fixed configurations, plan mode varies the
// configuration under fixed programs, and the engines refuse to guess
// which axis wins.
func familyActive(cfg *CampaignConfig) bool {
	return cfg.FamilySize > 1 && cfg.Faults == nil && cfg.Timeout == 0 && len(cfg.Plans) == 0
}

// famParam is one hoisted constant: its integer width and original
// value. Index-typed constants are never hoisted — they are loop
// bounds and memref/tensor coordinates, and mutating them changes the
// program's shape rather than its data.
type famParam struct {
	width uint
	orig  int64
}

// parameterizeMain clones m and hoists up to maxFamilyParams
// integer-typed arith.constant ops from main's entry block into entry
// arguments. The returned module is the family's shared test subject;
// params describes the argument vector. With nothing to hoist the
// clone is returned unchanged and params is empty (the family
// degenerates to identical members, which is still deterministic).
func parameterizeMain(m *ir.Module) (*ir.Module, []famParam) {
	pm := m.Clone()
	f := pm.Func("main")
	if f == nil || len(f.Regions) == 0 {
		return pm, nil
	}
	entry := f.Regions[0].Entry()
	if entry == nil || len(entry.Args) != 0 {
		return pm, nil
	}
	var params []famParam
	kept := entry.Ops[:0]
	for _, op := range entry.Ops {
		if len(params) < maxFamilyParams && op.Name == "arith.constant" &&
			len(op.Results) == 1 && len(op.Regions) == 0 {
			if it, ok := op.Results[0].Type.(ir.IntegerType); ok {
				if va, ok := op.Attrs.Get("value").(ir.IntegerAttr); ok {
					entry.Args = append(entry.Args, op.Results[0])
					params = append(params, famParam{width: it.Width, orig: va.Value})
					continue
				}
			}
		}
		kept = append(kept, op)
	}
	entry.Ops = kept
	if len(params) == 0 {
		return pm, nil
	}
	ft, err := ir.FuncType(f)
	if err != nil {
		return m.Clone(), nil
	}
	ins := append([]ir.Type(nil), ft.Inputs...)
	for _, a := range entry.Args {
		ins = append(ins, a.Type)
	}
	f.Attrs.Set("function_type", ir.TypeAttrOf(ir.FuncOf(ins, ft.Results)))
	return pm, params
}

// familyArgs builds one member's argument vector. Member 0 replays the
// base program exactly (the original constants); later members draw
// mutated values from a generator seeded with the member's own seed,
// so a member's inputs depend only on (params, seed) — never on which
// engine or strategy runs it.
func familyArgs(params []famParam, seed int64, member int) []rtval.Value {
	if len(params) == 0 {
		return nil
	}
	args := make([]rtval.Value, len(params))
	if member == 0 {
		for i, p := range params {
			args[i] = rtval.Box(rtval.NewInt(p.width, p.orig))
		}
		return args
	}
	rng := rand.New(rand.NewSource(seed))
	for i, p := range params {
		args[i] = rtval.Box(rtval.NewInt(p.width, mutateParam(rng, p.width)))
	}
	return args
}

// mutateParam draws one mutated constant: half the draws stay near
// zero (the UB-edge and interning-relevant range — zero divisors,
// degenerate shifts), half are full-width bit patterns.
func mutateParam(rng *rand.Rand, width uint) int64 {
	if width == 1 {
		return int64(rng.Intn(2))
	}
	if rng.Intn(2) == 0 {
		return rng.Int63n(33) - 16
	}
	return int64(rng.Uint64())
}

// familyFailure replicates one shared-stage failure to every member:
// the family never produced a testable program, so each seed records
// the same contained failure.
func familyFailure(baseSeed int64, count int, sf *StageFailure) []seedOutcome {
	outs := make([]seedOutcome, count)
	for j := range outs {
		outs[j] = seedOutcome{verdict: Verdict{
			Seed: baseSeed + int64(j), Kind: VerdictStageFailure, Failure: sf,
			Attempts: 1, Quarantined: true,
		}}
	}
	return outs
}

// famMember is one member's in-flight state while the family runs.
type famMember struct {
	seed int64
	args []rtval.Value
	ref  string
	// done short-circuits the remaining stages once the member has a
	// verdict (skipped, contained failure, or aborted).
	done bool
}

// runFamily differentially tests one mutation family of count members
// whose first member's seed is baseSeed. It returns one seedOutcome
// per member, in member order. The verdict stream is a function of
// (config, seeds) only: the batched and unbatched strategies share
// every decision point and differ solely in whether module-level work
// products are computed once or once per member.
func runFamily(ctx context.Context, cfg *CampaignConfig, baseSeed int64, count int, prog *gen.Program) []seedOutcome {
	outs := make([]seedOutcome, count)

	// Parameterize once; a panic here is a harness bug and fails the
	// whole family, exactly like a generation panic.
	var pm *ir.Module
	var params []famParam
	if sf := guard(StageGenerate, baseSeed, prog.Module, func() {
		pm, params = parameterizeMain(prog.Module)
	}); sf != nil {
		return familyFailure(baseSeed, count, sf)
	}

	// Reference stage, per member: the Ratte semantics run on the
	// member's inputs establishes its expected output. A member whose
	// reference run fails (mutated constants reached UB, a trap, or the
	// step budget) is recorded as skipped: with no defined reference
	// behaviour there is nothing to differentially test.
	members := make([]famMember, count)
	for j := range members {
		mem := &members[j]
		mem.seed = baseSeed + int64(j)
		if ctx.Err() != nil {
			outs[j] = seedOutcome{aborted: true}
			mem.done = true
			continue
		}
		mem.args = familyArgs(params, mem.seed, j)
		var refOut string
		var refErr error
		t0 := cfg.Telemetry.stageStart()
		sf := guard(StageReference, mem.seed, pm, func() {
			in := dialects.NewCompiledReferenceInterpreter()
			in.MaxSteps = familyMaxSteps
			res, err := in.RunArgs(pm, "main", mem.args)
			if err != nil {
				refErr = err
				return
			}
			refOut = res.Output
		})
		cfg.Telemetry.stageDone(mem.seed, StageReference, t0, spanOutcome(sf, refErr))
		switch {
		case sf != nil:
			outs[j] = seedOutcome{verdict: Verdict{
				Seed: mem.seed, Kind: VerdictStageFailure, Failure: sf,
				Attempts: 1, Quarantined: true,
			}}
			mem.done = true
		case refErr != nil:
			outs[j] = seedOutcome{verdict: Verdict{Seed: mem.seed, Kind: VerdictSkipped, Attempts: 1}}
			mem.done = true
		default:
			mem.ref = refOut
		}
	}

	if cfg.Batched {
		runFamilyBatched(ctx, cfg, pm, members, outs)
	} else {
		runFamilyUnbatched(ctx, cfg, pm, members, outs)
	}
	return outs
}

// finishMember runs the compare stage over a finished report and records
// the member's final outcome.
func finishMember(cfg *CampaignConfig, pm *ir.Module, mem *famMember, rep *Report) seedOutcome {
	var oracle Oracle
	t0 := cfg.Telemetry.stageStart()
	if sf := guard(StageCompare, mem.seed, pm, func() {
		oracle = rep.Detected()
	}); sf != nil {
		cfg.Telemetry.stageDone(mem.seed, StageCompare, t0, spanOutcome(sf, nil))
		return seedOutcome{verdict: Verdict{
			Seed: mem.seed, Kind: VerdictStageFailure, Failure: sf,
			Attempts: 1, Quarantined: true,
		}}
	}
	cfg.Telemetry.stageDone(mem.seed, StageCompare, t0, "ok")
	if oracle == OracleNone {
		return seedOutcome{verdict: Verdict{Seed: mem.seed, Kind: VerdictOK, Attempts: 1}}
	}
	return seedOutcome{
		verdict: Verdict{Seed: mem.seed, Kind: VerdictDetection, Oracle: oracle, Attempts: 1},
		detection: &Detection{
			Seed:     mem.seed,
			Oracle:   oracle,
			Program:  pm,
			Expected: mem.ref,
			Report:   rep,
		},
	}
}

// memberFailure records one member's contained stage failure.
func memberFailure(mem *famMember, sf *StageFailure) seedOutcome {
	return seedOutcome{verdict: Verdict{
		Seed: mem.seed, Kind: VerdictStageFailure, Failure: sf,
		Attempts: 1, Quarantined: true,
	}}
}

// rejectionReport builds the report of a member whose module the
// frontend verifier rejected: every configuration records the same
// compile error, which is the wrong-rejection half of the NC oracle.
func rejectionReport(cfg *CampaignConfig, mem *famMember, verr error) *Report {
	rep := &Report{
		Preset:    cfg.Preset,
		Reference: mem.ref,
		Levels:    make(map[BuildConfig]LevelResult, len(BuildConfigs)),
	}
	for _, bc := range BuildConfigs {
		rep.Levels[bc] = LevelResult{CompileErr: verr}
	}
	return rep
}

// runFamilyBatched is the shared-work strategy: verify once, compile
// the pass pipeline once per configuration, compile each configuration
// to a CompiledProgram once, and run every member through
// RunProgramArgs. Failure replication keeps member verdicts identical
// to the unbatched strategy: a deterministic panic in a shared stage
// would hit every member's private run of that stage too, so every
// live member records the same contained failure.
func runFamilyBatched(ctx context.Context, cfg *CampaignConfig, pm *ir.Module, members []famMember, outs []seedOutcome) {
	// Verify once.
	var verr error
	t0 := cfg.Telemetry.stageStart()
	sf := guard(StageVerify, members[0].seed, pm, func() {
		verr = verify.Module(pm, dialects.SourceSpecs())
	})
	cfg.Telemetry.stageDone(members[0].seed, StageVerify, t0, spanOutcome(sf, verr))
	if sf != nil {
		for j := range members {
			if !members[j].done {
				outs[j] = memberFailure(&members[j], sf)
			}
		}
		return
	}
	if verr != nil {
		for j := range members {
			mem := &members[j]
			if mem.done {
				continue
			}
			outs[j] = finishMember(cfg, pm, mem, rejectionReport(cfg, mem, verr))
		}
		return
	}

	// Compile the pass pipeline once per configuration.
	opts := &compiler.Options{Bugs: cfg.Bugs, SkipVerify: true}
	var cres []compiler.ConfigResult
	tc := cfg.Telemetry.stageStart()
	sf = guard(StageCompile, members[0].seed, pm, func() {
		cres = compiler.CompileConfigsOpts(pm, cfg.Preset, opts, BuildConfigs)
	})
	cfg.Telemetry.stageDone(members[0].seed, StageCompile, tc, spanOutcome(sf, nil))
	if sf != nil {
		for j := range members {
			if !members[j].done {
				outs[j] = memberFailure(&members[j], sf)
			}
		}
		return
	}

	// Interpret: one CompiledProgram per configuration, compiled lazily
	// inside the first live member's guard (so a deterministic compile
	// panic lands on each member exactly as it would unbatched), then
	// reused by every later member.
	progs := make([]*interp.CompiledProgram, len(BuildConfigs))
	for j := range members {
		mem := &members[j]
		if mem.done {
			continue
		}
		if ctx.Err() != nil {
			outs[j] = seedOutcome{aborted: true}
			mem.done = true
			continue
		}
		rep := &Report{
			Preset:    cfg.Preset,
			Reference: mem.ref,
			Levels:    make(map[BuildConfig]LevelResult, len(BuildConfigs)),
		}
		ti := cfg.Telemetry.stageStart()
		if sf := guard(StageInterpret, mem.seed, pm, func() {
			for i, bc := range BuildConfigs {
				var lr LevelResult
				if cres[i].Err != nil {
					lr.CompileErr = cres[i].Err
				} else {
					if progs[i] == nil {
						progs[i] = interp.Compile(dialects.ExecutorRegistry(), cres[i].Module)
					}
					ex := dialects.NewExecutor()
					ex.MaxSteps = familyMaxSteps
					ex.Metrics = cfg.Telemetry.interpMetrics()
					res, err := ex.RunProgramArgs(progs[i], "main", mem.args)
					if err != nil {
						lr.RunErr = err
					} else {
						lr.Output = res.Output
					}
				}
				rep.Levels[bc] = lr
			}
		}); sf != nil {
			cfg.Telemetry.stageDone(mem.seed, StageInterpret, ti, spanOutcome(sf, nil))
			outs[j] = memberFailure(mem, sf)
			continue
		}
		cfg.Telemetry.stageDone(mem.seed, StageInterpret, ti, "ok")
		outs[j] = finishMember(cfg, pm, mem, rep)
	}
}

// runFamilyUnbatched runs the identical members through the full
// per-member pipeline — the strategy batching is measured against.
func runFamilyUnbatched(ctx context.Context, cfg *CampaignConfig, pm *ir.Module, members []famMember, outs []seedOutcome) {
	for j := range members {
		mem := &members[j]
		if mem.done {
			continue
		}
		if ctx.Err() != nil {
			outs[j] = seedOutcome{aborted: true}
			continue
		}

		var verr error
		t0 := cfg.Telemetry.stageStart()
		sf := guard(StageVerify, mem.seed, pm, func() {
			verr = verify.Module(pm, dialects.SourceSpecs())
		})
		cfg.Telemetry.stageDone(mem.seed, StageVerify, t0, spanOutcome(sf, verr))
		if sf != nil {
			outs[j] = memberFailure(mem, sf)
			continue
		}
		if verr != nil {
			outs[j] = finishMember(cfg, pm, mem, rejectionReport(cfg, mem, verr))
			continue
		}

		opts := &compiler.Options{Bugs: cfg.Bugs, SkipVerify: true}
		var cres []compiler.ConfigResult
		tc := cfg.Telemetry.stageStart()
		sf = guard(StageCompile, mem.seed, pm, func() {
			cres = compiler.CompileConfigsOpts(pm, cfg.Preset, opts, BuildConfigs)
		})
		cfg.Telemetry.stageDone(mem.seed, StageCompile, tc, spanOutcome(sf, nil))
		if sf != nil {
			outs[j] = memberFailure(mem, sf)
			continue
		}

		rep := &Report{
			Preset:    cfg.Preset,
			Reference: mem.ref,
			Levels:    make(map[BuildConfig]LevelResult, len(BuildConfigs)),
		}
		ti := cfg.Telemetry.stageStart()
		if sf := guard(StageInterpret, mem.seed, pm, func() {
			for i, bc := range BuildConfigs {
				var lr LevelResult
				if cres[i].Err != nil {
					lr.CompileErr = cres[i].Err
				} else {
					ex := dialects.NewExecutor()
					ex.MaxSteps = familyMaxSteps
					ex.Metrics = cfg.Telemetry.interpMetrics()
					res, err := ex.RunArgs(cres[i].Module, "main", mem.args)
					if err != nil {
						lr.RunErr = err
					} else {
						lr.Output = res.Output
					}
				}
				rep.Levels[bc] = lr
			}
		}); sf != nil {
			cfg.Telemetry.stageDone(mem.seed, StageInterpret, ti, spanOutcome(sf, nil))
			outs[j] = memberFailure(mem, sf)
			continue
		}
		cfg.Telemetry.stageDone(mem.seed, StageInterpret, ti, "ok")
		outs[j] = finishMember(cfg, pm, mem, rep)
	}
}

// runCampaignFamilies is the serial engine's family-mode loop: one
// generation per family, one runFamily per family, and exactly the
// classic loop's per-seed accounting over the member outcomes.
func runCampaignFamilies(ctx context.Context, cfg CampaignConfig) (*CampaignResult, error) {
	res := newCampaignResult()
	for base := 0; base < cfg.Programs; base += cfg.FamilySize {
		count := cfg.FamilySize
		if base+count > cfg.Programs {
			count = cfg.Programs - base
		}
		if err := ctx.Err(); err != nil {
			return res, err
		}
		allResumed := true
		for j := 0; j < count; j++ {
			if _, ok := cfg.Resumed[cfg.Seed+int64(base+j)]; !ok {
				allResumed = false
				break
			}
		}
		var outs []seedOutcome
		if !allResumed {
			baseSeed := cfg.Seed + int64(base)
			prog, sf, err := generateStage(&cfg, baseSeed, nil) // family mode runs uncovered
			if err != nil {
				return nil, fmt.Errorf("difftest: generation failed: %w", err)
			}
			if sf != nil {
				outs = familyFailure(baseSeed, count, sf)
			} else {
				outs = runFamily(ctx, &cfg, baseSeed, count, prog)
			}
		}
		for j := 0; j < count; j++ {
			seed := cfg.Seed + int64(base+j)
			if v, ok := cfg.Resumed[seed]; ok {
				isDetection := res.record(v, nil)
				cfg.Telemetry.onVerdict(v)
				if isDetection && cfg.StopAtFirst {
					return res, nil
				}
				continue
			}
			out := outs[j]
			if out.aborted {
				return res, ctx.Err()
			}
			isDetection := res.record(out.verdict, out.detection)
			cfg.Telemetry.onVerdict(out.verdict)
			if cfg.Journal != nil {
				t0 := cfg.Telemetry.stageStart()
				err := cfg.Journal.Append(out.verdict)
				cfg.Telemetry.journalDone(t0)
				if err != nil {
					return res, fmt.Errorf("difftest: journal: %w", err)
				}
			}
			if isDetection && cfg.StopAtFirst {
				return res, nil
			}
		}
	}
	return res, nil
}
