package difftest

import (
	"context"
	"fmt"
	"sync"

	"ratte/internal/gen"
)

// RunCampaignParallel runs the same campaign as RunCampaign across a
// persistent pool of worker goroutines — the shape of the paper's
// overnight runs on an 8-core laptop.
//
// The engine is a two-stage pipeline over bounded channels: a
// generation stage produces programs from seeds while a testing stage
// differentially tests them, so generation of seed i+k overlaps with
// compilation and execution of seed i. `workers` bounds the total
// goroutines across both stages; the bounded hand-off channel throttles
// whichever stage is faster.
//
// Results are byte-identical to the serial runner for any worker count:
// outcomes are re-sequenced into seed order by the collector, which
// replays exactly the serial loop — counting a program before
// inspecting it, recording detections in seed order, and, under
// StopAtFirst, stopping at the first in-order detection (at which point
// the whole pipeline is cancelled promptly via a context). A generation
// failure is reported exactly as the serial runner reports it: the
// first failure in seed order wins, and later outcomes are discarded.
func RunCampaignParallel(cfg CampaignConfig, workers int) (*CampaignResult, error) {
	if workers <= 1 {
		return RunCampaign(cfg)
	}
	if cfg.Programs <= 0 {
		return &CampaignResult{ByOracle: make(map[Oracle]int)}, nil
	}

	type generated struct {
		idx  int
		prog *gen.Program
		err  error
	}
	type outcome struct {
		idx       int
		detection *Detection
		err       error
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Stage sizing: generation and testing are both CPU-bound; testing
	// (4 compilations + up to 4 executions) is the heavier stage, so it
	// gets at least half the pool.
	genWorkers := workers / 2
	if genWorkers == 0 {
		genWorkers = 1
	}
	testWorkers := workers - genWorkers
	if testWorkers == 0 {
		testWorkers = 1
	}

	seeds := make(chan int)
	programs := make(chan generated, workers) // bounded pipeline hand-off
	outcomes := make(chan outcome, workers)

	// Seed feeder.
	go func() {
		defer close(seeds)
		for i := 0; i < cfg.Programs; i++ {
			select {
			case seeds <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Generation stage.
	var genWG sync.WaitGroup
	for w := 0; w < genWorkers; w++ {
		genWG.Add(1)
		go func() {
			defer genWG.Done()
			for i := range seeds {
				p, err := generateForCampaign(cfg, cfg.Seed+int64(i))
				select {
				case programs <- generated{idx: i, prog: p, err: err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		genWG.Wait()
		close(programs)
	}()

	// Testing stage.
	var testWG sync.WaitGroup
	for w := 0; w < testWorkers; w++ {
		testWG.Add(1)
		go func() {
			defer testWG.Done()
			for g := range programs {
				o := outcome{idx: g.idx, err: g.err}
				if g.err == nil {
					rep := TestModule(g.prog.Module, g.prog.Expected, cfg.Preset, cfg.Bugs)
					if oracle := rep.Detected(); oracle != OracleNone {
						o.detection = &Detection{
							Seed:     cfg.Seed + int64(g.idx),
							Oracle:   oracle,
							Program:  g.prog.Module,
							Expected: g.prog.Expected,
							Report:   rep,
						}
					}
				}
				select {
				case outcomes <- o:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		testWG.Wait()
		close(outcomes)
	}()

	// Collector: re-sequence outcomes into seed order and replay the
	// serial loop over them.
	res := &CampaignResult{ByOracle: make(map[Oracle]int)}
	pending := make(map[int]outcome)
	next := 0
	var firstErr error
	done := false
	for o := range outcomes {
		if done {
			continue // drain so the stages can exit
		}
		pending[o.idx] = o
		for !done {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if cur.err != nil {
				firstErr = cur.err
				done = true
				break
			}
			res.Programs++
			if cur.detection != nil {
				res.Detections = append(res.Detections, *cur.detection)
				res.ByOracle[cur.detection.Oracle]++
				if cfg.StopAtFirst {
					done = true
				}
			}
		}
		if done {
			cancel()
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("difftest: generation failed: %w", firstErr)
	}
	return res, nil
}

// generateForCampaign isolates generation so the parallel runner shares
// the serial runner's behaviour exactly.
func generateForCampaign(cfg CampaignConfig, seed int64) (*gen.Program, error) {
	return gen.Generate(gen.Config{Preset: cfg.Preset, Size: cfg.Size, Seed: seed})
}
