package difftest

import (
	"fmt"
	"sort"
	"sync"

	"ratte/internal/gen"
)

// RunCampaignParallel runs the same campaign as RunCampaign across the
// given number of worker goroutines — the shape of the paper's
// overnight runs on an 8-core laptop. Results are deterministic for a
// given configuration regardless of worker count: each program seed is
// tested independently and detections are aggregated in seed order.
//
// StopAtFirst is treated as a budget hint: workers drain the remaining
// queue once any detection exists, and the first detection *by seed
// order* is reported first, so the result is the same one the serial
// runner would return.
func RunCampaignParallel(cfg CampaignConfig, workers int) (*CampaignResult, error) {
	if workers <= 1 {
		return RunCampaign(cfg)
	}
	if cfg.Programs <= 0 {
		return &CampaignResult{ByOracle: make(map[Oracle]int)}, nil
	}

	type outcome struct {
		idx       int
		detection *Detection
		err       error
	}

	jobs := make(chan int)
	results := make(chan outcome, workers)
	var wg sync.WaitGroup

	var stopOnce sync.Once
	stopped := make(chan struct{})

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				seed := cfg.Seed + int64(i)
				p, err := generateForCampaign(cfg, seed)
				if err != nil {
					results <- outcome{idx: i, err: err}
					continue
				}
				rep := TestModule(p.Module, p.Expected, cfg.Preset, cfg.Bugs)
				var det *Detection
				if oracle := rep.Detected(); oracle != OracleNone {
					det = &Detection{
						Seed:     seed,
						Oracle:   oracle,
						Program:  p.Module,
						Expected: p.Expected,
						Report:   rep,
					}
					if cfg.StopAtFirst {
						stopOnce.Do(func() { close(stopped) })
					}
				}
				results <- outcome{idx: i, detection: det}
			}
		}()
	}

	go func() {
		defer close(jobs)
		for i := 0; i < cfg.Programs; i++ {
			if cfg.StopAtFirst {
				select {
				case <-stopped:
					return
				default:
				}
			}
			jobs <- i
		}
	}()

	go func() {
		wg.Wait()
		close(results)
	}()

	var outs []outcome
	var firstErr error
	for o := range results {
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
		outs = append(outs, o)
	}
	if firstErr != nil {
		return nil, fmt.Errorf("difftest: %w", firstErr)
	}

	sort.Slice(outs, func(i, j int) bool { return outs[i].idx < outs[j].idx })
	res := &CampaignResult{ByOracle: make(map[Oracle]int)}
	res.Programs = len(outs)
	for _, o := range outs {
		if o.detection == nil {
			continue
		}
		res.Detections = append(res.Detections, *o.detection)
		res.ByOracle[o.detection.Oracle]++
		if cfg.StopAtFirst {
			// Report exactly the first in-order detection, like the
			// serial runner.
			res.Detections = res.Detections[:1]
			res.ByOracle = map[Oracle]int{o.detection.Oracle: 1}
			break
		}
	}
	return res, nil
}

// generateForCampaign isolates generation so the parallel runner shares
// the serial runner's behaviour exactly.
func generateForCampaign(cfg CampaignConfig, seed int64) (*gen.Program, error) {
	return gen.Generate(gen.Config{Preset: cfg.Preset, Size: cfg.Size, Seed: seed})
}
