package difftest

import (
	"context"
	"fmt"
	"sync"

	"ratte/internal/coverage"
	"ratte/internal/gen"
)

// RunCampaignParallel runs the same campaign as RunCampaign across a
// persistent pool of worker goroutines — the shape of the paper's
// overnight runs on an 8-core laptop.
func RunCampaignParallel(cfg CampaignConfig, workers int) (*CampaignResult, error) {
	return RunCampaignParallelCtx(context.Background(), cfg, workers)
}

// RunCampaignParallelCtx is the parallel engine under a caller context.
//
// The engine is a two-stage pipeline over bounded channels: a
// generation stage produces programs from seeds while a testing stage
// runs the fault-isolated per-seed pipeline (testSeed) on them, so
// generation of seed i+k overlaps with compilation and execution of
// seed i. `workers` bounds the total goroutines across both stages; the
// bounded hand-off channel throttles whichever stage is faster.
//
// Results are byte-identical to the serial runner for any worker count:
// outcomes are re-sequenced into seed order by the collector, which
// replays exactly the serial loop — recording each verdict (and
// journaling it) in seed order, splicing resumed verdicts in at their
// positions, and, under StopAtFirst, stopping at the first in-order
// detection (at which point the whole pipeline is cancelled promptly
// via a context). A generation failure is reported exactly as the
// serial runner reports it: the first failure in seed order wins, and
// later outcomes are discarded. Cancelling the caller's ctx drains the
// pipeline and returns the partial, already-journaled result with
// ctx.Err().
func RunCampaignParallelCtx(parent context.Context, cfg CampaignConfig, workers int) (*CampaignResult, error) {
	if workers <= 1 {
		return RunCampaignCtx(parent, cfg)
	}
	if cfg.Programs <= 0 {
		res := newCampaignResult()
		res.notePlans(&cfg)
		return res, nil
	}
	cfg.Telemetry.begin(cfg.Programs)
	cfg.Telemetry.attachJournal(cfg.Journal)
	cfg.Telemetry.attachPlans(cfg.Plans)

	type generated struct {
		idx  int
		prog *gen.Program
		sf   *StageFailure
		err  error
		// cov is the seed's coverage map, created by the generation
		// stage and carried to the testing stage so one map spans the
		// whole per-seed pipeline (nil when coverage is off).
		cov *coverage.Map
	}
	type outcome struct {
		idx int
		out seedOutcome
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	// Family mode changes the unit of pipeline work from one seed to
	// one family: the feeder emits family-base indices, the generation
	// stage produces base programs, and the testing stage fans each
	// family back out into per-member outcomes. The collector is
	// unchanged — it re-sequences member outcomes exactly as it
	// re-sequences seed outcomes.
	fam := familyActive(&cfg)
	famCount := func(base int) int {
		count := cfg.FamilySize
		if base+count > cfg.Programs {
			count = cfg.Programs - base
		}
		return count
	}
	famResumed := func(base int) bool {
		for j := 0; j < famCount(base); j++ {
			if _, ok := cfg.Resumed[cfg.Seed+int64(base+j)]; !ok {
				return false
			}
		}
		return true
	}

	// Stage sizing: generation and testing are both CPU-bound; testing
	// (4 compilations + up to 4 executions) is the heavier stage, so it
	// gets at least half the pool.
	genWorkers := workers / 2
	if genWorkers == 0 {
		genWorkers = 1
	}
	testWorkers := workers - genWorkers
	if testWorkers == 0 {
		testWorkers = 1
	}

	seeds := make(chan int)
	programs := make(chan generated, workers) // bounded pipeline hand-off
	outcomes := make(chan outcome, workers)

	// Seed feeder. Resumed seeds never enter the pipeline — the
	// collector splices their recorded verdicts in at their positions.
	go func() {
		defer close(seeds)
		if fam {
			for base := 0; base < cfg.Programs; base += cfg.FamilySize {
				if famResumed(base) {
					continue
				}
				select {
				case seeds <- base:
				case <-ctx.Done():
					return
				}
			}
			return
		}
		for i := 0; i < cfg.Programs; i++ {
			if _, ok := cfg.Resumed[cfg.Seed+int64(i)]; ok {
				continue
			}
			select {
			case seeds <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Generation stage, panic-contained per seed.
	var genWG sync.WaitGroup
	for w := 0; w < genWorkers; w++ {
		genWG.Add(1)
		go func() {
			defer genWG.Done()
			for i := range seeds {
				var cov *coverage.Map // family mode runs uncovered
				if !fam {
					cov = cfg.Coverage.newSeedMap()
				}
				p, sf, err := generateStage(&cfg, cfg.Seed+int64(i), cov)
				select {
				case programs <- generated{idx: i, prog: p, sf: sf, err: err, cov: cov}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		genWG.Wait()
		close(programs)
	}()

	// Testing stage: the same per-seed pipeline the serial engine runs.
	var testWG sync.WaitGroup
	for w := 0; w < testWorkers; w++ {
		testWG.Add(1)
		go func() {
			defer testWG.Done()
			for g := range programs {
				seed := cfg.Seed + int64(g.idx)
				if fam {
					count := famCount(g.idx)
					var outs []seedOutcome
					switch {
					case g.err != nil:
						outs = make([]seedOutcome, count)
						for j := range outs {
							outs[j] = seedOutcome{genErr: g.err}
						}
					case g.sf != nil:
						outs = familyFailure(seed, count, g.sf)
					default:
						outs = runFamily(ctx, &cfg, seed, count, g.prog)
					}
					for j := range outs {
						if _, ok := cfg.Resumed[seed+int64(j)]; ok {
							continue
						}
						select {
						case outcomes <- outcome{idx: g.idx + j, out: outs[j]}:
						case <-ctx.Done():
							return
						}
					}
					continue
				}
				var out seedOutcome
				switch {
				case g.err != nil:
					out = seedOutcome{genErr: g.err}
				case g.sf != nil:
					out = seedOutcome{verdict: Verdict{
						Seed: seed, Kind: VerdictStageFailure, Failure: g.sf,
						Attempts: 1, Quarantined: true,
						Coverage: g.cov.Summary(),
					}}
				default:
					out = testSeed(ctx, &cfg, seed, g.prog, g.cov)
				}
				select {
				case outcomes <- outcome{idx: g.idx, out: out}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		testWG.Wait()
		close(outcomes)
	}()

	// Collector: re-sequence outcomes into seed order and replay the
	// serial loop over them — including journaling, which therefore
	// happens strictly in seed order here too.
	res := newCampaignResult()
	res.notePlans(&cfg)
	pending := make(map[int]seedOutcome)
	next := 0
	var firstErr error   // first in-seed-order generation failure
	var journalErr error // first journal write failure
	done := false
	complete := false // every seed verdicted, or StopAtFirst fired

	advance := func() {
		for !done && next < cfg.Programs {
			seed := cfg.Seed + int64(next)
			if v, ok := cfg.Resumed[seed]; ok {
				next++
				isDetection := res.record(v, nil)
				cfg.Telemetry.onVerdict(v)
				cfg.Coverage.onVerdict(v)
				if isDetection && cfg.StopAtFirst {
					done, complete = true, true
				}
				continue
			}
			cur, ok := pending[next]
			if !ok {
				return
			}
			delete(pending, next)
			next++
			if cur.genErr != nil {
				firstErr = cur.genErr
				done = true
				return
			}
			if cur.aborted {
				done = true
				return
			}
			isDetection := res.record(cur.verdict, cur.detection)
			cfg.Telemetry.onVerdict(cur.verdict)
			cfg.Coverage.onVerdict(cur.verdict)
			if cfg.Journal != nil {
				t0 := cfg.Telemetry.stageStart()
				err := cfg.Journal.Append(cur.verdict)
				cfg.Telemetry.journalDone(t0)
				if err != nil {
					journalErr = err
					done = true
					return
				}
			}
			if isDetection && cfg.StopAtFirst {
				done, complete = true, true
				return
			}
		}
		if next == cfg.Programs {
			complete = true
		}
	}

	advance() // a resumed prefix (or fully resumed run) needs no outcomes
	if done || complete {
		cancel()
	}
	for o := range outcomes {
		if done {
			continue // drain so the stages can exit
		}
		pending[o.idx] = o.out
		advance()
		if done || complete {
			cancel()
		}
	}

	switch {
	case firstErr != nil:
		return nil, fmt.Errorf("difftest: generation failed: %w", firstErr)
	case journalErr != nil:
		return res, fmt.Errorf("difftest: journal: %w", journalErr)
	case !complete && parent.Err() != nil:
		return res, parent.Err()
	}
	return res, nil
}
