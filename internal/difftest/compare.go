package difftest

import (
	"fmt"

	"ratte/internal/ir"
)

// DiffResults compares two campaign results field by field and returns
// a human-readable description of the first difference, or "" when the
// results are observationally identical. It compares exactly what the
// cross-engine determinism suite compares: program counts, detections
// in order (seed, oracle, expected output, program text and the full
// per-configuration reports) and the per-oracle tallies. The
// serial-vs-parallel agreement oracle of internal/conformance is built
// on this.
func DiffResults(a, b *CampaignResult) string {
	if a.Programs != b.Programs {
		return fmt.Sprintf("programs: %d vs %d", a.Programs, b.Programs)
	}
	if len(a.Detections) != len(b.Detections) {
		return fmt.Sprintf("detections: %d vs %d", len(a.Detections), len(b.Detections))
	}
	for i := range a.Detections {
		da, db := a.Detections[i], b.Detections[i]
		if da.Seed != db.Seed {
			return fmt.Sprintf("detection %d: seed %d vs %d", i, da.Seed, db.Seed)
		}
		if da.Oracle != db.Oracle {
			return fmt.Sprintf("detection %d: oracle %s vs %s", i, da.Oracle, db.Oracle)
		}
		if da.Expected != db.Expected {
			return fmt.Sprintf("detection %d: expected output differs", i)
		}
		if ir.Print(da.Program) != ir.Print(db.Program) {
			return fmt.Sprintf("detection %d: program text differs", i)
		}
		for _, bc := range BuildConfigs {
			la, lb := da.Report.Levels[bc], db.Report.Levels[bc]
			if la.Output != lb.Output ||
				(la.CompileErr == nil) != (lb.CompileErr == nil) ||
				(la.RunErr == nil) != (lb.RunErr == nil) {
				return fmt.Sprintf("detection %d: report for %s differs", i, bc)
			}
		}
	}
	if len(a.ByOracle) != len(b.ByOracle) {
		return fmt.Sprintf("byOracle: %v vs %v", a.ByOracle, b.ByOracle)
	}
	for o, n := range a.ByOracle {
		if b.ByOracle[o] != n {
			return fmt.Sprintf("oracle %s: %d vs %d detections", o, n, b.ByOracle[o])
		}
	}
	return ""
}
