package difftest

import (
	"fmt"

	"ratte/internal/ir"
)

// DiffResults compares two campaign results field by field and returns
// a human-readable description of the first difference, or "" when the
// results are observationally identical. It compares exactly what the
// cross-engine determinism suite compares: program counts, detections
// in order (seed, oracle, expected output, program text and the full
// per-configuration reports) and the per-oracle tallies. The
// serial-vs-parallel agreement oracle of internal/conformance is built
// on this.
func DiffResults(a, b *CampaignResult) string {
	if a.Programs != b.Programs {
		return fmt.Sprintf("programs: %d vs %d", a.Programs, b.Programs)
	}
	if len(a.Detections) != len(b.Detections) {
		return fmt.Sprintf("detections: %d vs %d", len(a.Detections), len(b.Detections))
	}
	for i := range a.Detections {
		da, db := a.Detections[i], b.Detections[i]
		if da.Seed != db.Seed {
			return fmt.Sprintf("detection %d: seed %d vs %d", i, da.Seed, db.Seed)
		}
		if da.Oracle != db.Oracle {
			return fmt.Sprintf("detection %d: oracle %s vs %s", i, da.Oracle, db.Oracle)
		}
		if da.Expected != db.Expected {
			return fmt.Sprintf("detection %d: expected output differs", i)
		}
		if da.Plan != db.Plan {
			return fmt.Sprintf("detection %d: plan %s vs %s", i, da.Plan, db.Plan)
		}
		if ir.Print(da.Program) != ir.Print(db.Program) {
			return fmt.Sprintf("detection %d: program text differs", i)
		}
		if da.Report != nil || db.Report != nil {
			if (da.Report == nil) != (db.Report == nil) {
				return fmt.Sprintf("detection %d: report presence differs", i)
			}
			for _, bc := range BuildConfigs {
				la, lb := da.Report.Levels[bc], db.Report.Levels[bc]
				if la.Output != lb.Output ||
					(la.CompileErr == nil) != (lb.CompileErr == nil) ||
					(la.RunErr == nil) != (lb.RunErr == nil) {
					return fmt.Sprintf("detection %d: report for %s differs", i, bc)
				}
			}
		}
		if d := diffPlanReports(i, da.PlanReport, db.PlanReport); d != "" {
			return d
		}
	}
	if len(a.ByOracle) != len(b.ByOracle) {
		return fmt.Sprintf("byOracle: %v vs %v", a.ByOracle, b.ByOracle)
	}
	for o, n := range a.ByOracle {
		if b.ByOracle[o] != n {
			return fmt.Sprintf("oracle %s: %d vs %d detections", o, n, b.ByOracle[o])
		}
	}
	if a.Plans != b.Plans || a.PlanSet != b.PlanSet {
		return fmt.Sprintf("plan set: %d plans %016x vs %d plans %016x", a.Plans, a.PlanSet, b.Plans, b.PlanSet)
	}
	if a.DistinctDetections != b.DistinctDetections {
		return fmt.Sprintf("distinct detections: %d vs %d", a.DistinctDetections, b.DistinctDetections)
	}
	return DiffVerdicts(a.Verdicts, b.Verdicts)
}

// diffPlanReports compares two detections' per-plan records. Results
// are keyed by Plan.Key — the (name | plan fingerprint) identity — so
// two sampled plans sharing a display name can never silently merge
// into one comparison slot.
func diffPlanReports(i int, ra, rb *PlanReport) string {
	if (ra == nil) != (rb == nil) {
		return fmt.Sprintf("detection %d: plan report presence differs", i)
	}
	if ra == nil {
		return ""
	}
	if len(ra.Plans) != len(rb.Plans) {
		return fmt.Sprintf("detection %d: plan count %d vs %d", i, len(ra.Plans), len(rb.Plans))
	}
	for j := range ra.Plans {
		ka, kb := ra.Plans[j].Key(), rb.Plans[j].Key()
		if ka != kb {
			return fmt.Sprintf("detection %d: plan %d is %s vs %s", i, j, ka, kb)
		}
		la, lb := ra.Results[ka], rb.Results[kb]
		if la.Output != lb.Output ||
			(la.CompileErr == nil) != (lb.CompileErr == nil) ||
			(la.RunErr == nil) != (lb.RunErr == nil) {
			return fmt.Sprintf("detection %d: plan report for %s differs", i, ka)
		}
	}
	return ""
}

// DiffVerdicts compares two verdict sequences field by field and
// returns a description of the first difference, or "" when they are
// identical. Panic stacks are excluded — they record goroutine and
// engine specifics that legitimately differ between byte-identical
// runs — but everything else, down to attempt counts and fault tallies,
// must match. This is the equality the resume and fault-tolerance
// guarantees are stated in.
func DiffVerdicts(a, b []Verdict) string {
	if len(a) != len(b) {
		return fmt.Sprintf("verdicts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		va, vb := a[i], b[i]
		if va.Seed != vb.Seed {
			return fmt.Sprintf("verdict %d: seed %d vs %d", i, va.Seed, vb.Seed)
		}
		if va.Kind != vb.Kind {
			return fmt.Sprintf("verdict %d (seed %d): kind %s vs %s", i, va.Seed, va.Kind, vb.Kind)
		}
		if va.Oracle != vb.Oracle {
			return fmt.Sprintf("verdict %d (seed %d): oracle %s vs %s", i, va.Seed, va.Oracle, vb.Oracle)
		}
		if va.Attempts != vb.Attempts {
			return fmt.Sprintf("verdict %d (seed %d): attempts %d vs %d", i, va.Seed, va.Attempts, vb.Attempts)
		}
		if va.Faults != vb.Faults {
			return fmt.Sprintf("verdict %d (seed %d): faults %d vs %d", i, va.Seed, va.Faults, vb.Faults)
		}
		if va.Quarantined != vb.Quarantined {
			return fmt.Sprintf("verdict %d (seed %d): quarantined %v vs %v", i, va.Seed, va.Quarantined, vb.Quarantined)
		}
		if va.Plan != vb.Plan {
			return fmt.Sprintf("verdict %d (seed %d): plan %s vs %s", i, va.Seed, va.Plan, vb.Plan)
		}
		if va.Program != vb.Program {
			return fmt.Sprintf("verdict %d (seed %d): program fingerprint %016x vs %016x", i, va.Seed, va.Program, vb.Program)
		}
		fa, fb := va.Failure, vb.Failure
		if (fa == nil) != (fb == nil) {
			return fmt.Sprintf("verdict %d (seed %d): failure presence differs", i, va.Seed)
		}
		if fa == nil {
			continue
		}
		if fa.Stage != fb.Stage {
			return fmt.Sprintf("verdict %d (seed %d): failure stage %s vs %s", i, va.Seed, fa.Stage, fb.Stage)
		}
		if fa.Reason != fb.Reason {
			return fmt.Sprintf("verdict %d (seed %d): failure reason differs", i, va.Seed)
		}
		if fa.Module != fb.Module {
			return fmt.Sprintf("verdict %d (seed %d): failure module differs", i, va.Seed)
		}
		if fa.Injected != fb.Injected {
			return fmt.Sprintf("verdict %d (seed %d): failure injected %v vs %v", i, va.Seed, fa.Injected, fb.Injected)
		}
	}
	return ""
}
