// Package difftest implements Ratte's test oracles (paper §3.4) and the
// end-to-end differential-testing harness of the evaluation (§4):
//
//   - NC, the non-crash oracle: the compiler must accept a statically
//     valid program and the compiled program must not crash;
//   - DT-O, differential testing across optimisation levels;
//   - DT-R, differential testing against the Ratte reference semantics.
//
// A Report captures one program's behaviour across every optimisation
// level of a (possibly bug-injected) compiler; a Campaign generates and
// tests programs until a bug is detected, which is how the Table 3
// experiment re-finds each injected defect.
package difftest

import (
	"context"
	"fmt"
	"time"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/dialects"
	"ratte/internal/faultinject"
	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/verify"
)

// Oracle identifies which test oracle detected a difference.
type Oracle string

// The oracles of paper §3.4 / Table 3.
const (
	OracleNone Oracle = ""     // nothing detected
	OracleNC   Oracle = "NC"   // wrong rejection or runtime crash
	OracleDTO  Oracle = "DT-O" // outputs differ across optimisation levels
	OracleDTR  Oracle = "DT-R" // output differs from the reference semantics
)

// BuildConfig is one compiler configuration under test: an optimisation
// level plus a lowering strategy. The paper applies Ratte to several
// end-to-end compilations (§4.1); varying the lowering strategy is what
// reaches both homes of the ceildivsi defects (arith-expand and the
// direct convert-arith-to-llvm patterns).
type BuildConfig = compiler.Config

// BuildConfigs lists the configurations every program is tested under.
var BuildConfigs = []BuildConfig{
	{Level: compiler.O0},
	{Level: compiler.O1},
	{Level: compiler.O2},
	{Level: compiler.O1, SkipArithExpand: true},
}

// LevelResult is the outcome of compiling and running at one
// configuration.
type LevelResult struct {
	CompileErr error
	RunErr     error
	Output     string
}

// Report is the differential-testing record of one program.
type Report struct {
	Preset    string
	Reference string // expected output per the Ratte semantics
	Levels    map[BuildConfig]LevelResult
}

// TestModule compiles and runs a UB-free module under every build
// configuration of the given (possibly bug-injected) compiler and
// records the outcomes. reference is the expected output from the
// Ratte semantics.
//
// This is the campaign hot loop, so the work the configurations share
// is done once: the module is verified a single time and the common
// pass-pipeline prefix across BuildConfigs is compiled once and forked
// at each divergence point (compiler.CompileConfigs); the executor is
// instantiated over the memoized dialect registry. The outcome per
// configuration is identical to compiling each from scratch.
func TestModule(m *ir.Module, reference, preset string, bugSet bugs.Set) *Report {
	return testModuleConfigs(m, reference, preset, bugSet, BuildConfigs)
}

func testModuleConfigs(m *ir.Module, reference, preset string, bugSet bugs.Set, configs []BuildConfig) *Report {
	rep := &Report{
		Preset:    preset,
		Reference: reference,
		Levels:    make(map[BuildConfig]LevelResult, len(configs)),
	}
	outs := compiler.CompileConfigs(m, preset, bugSet, configs)
	for i, bc := range configs {
		var lr LevelResult
		if outs[i].Err != nil {
			lr.CompileErr = outs[i].Err
		} else {
			res, err := dialects.NewExecutor().Run(outs[i].Module, "main")
			if err != nil {
				lr.RunErr = err
			} else {
				lr.Output = res.Output
			}
		}
		rep.Levels[bc] = lr
	}
	return rep
}

// NC reports whether the non-crash oracle fires: a compile-time
// rejection of a valid program, or a runtime crash of a UB-free one.
func (r *Report) NC() bool {
	for _, lr := range r.Levels {
		if lr.CompileErr != nil || lr.RunErr != nil {
			return true
		}
	}
	return false
}

// DTO reports whether outputs differ between two optimisation levels
// that both compiled and ran. Only configurations sharing a lowering
// strategy are compared — that is what "different optimisation levels"
// means, and exactly why lowering bugs (applied identically at every
// level) are invisible to this oracle.
func (r *Report) DTO() bool {
	var first *string
	for _, bc := range BuildConfigs {
		if bc.SkipArithExpand {
			continue
		}
		lr := r.Levels[bc]
		if lr.CompileErr != nil || lr.RunErr != nil {
			continue
		}
		out := lr.Output
		if first == nil {
			first = &out
		} else if *first != out {
			return true
		}
	}
	return false
}

// DTR reports whether any successful run's output differs from the
// reference semantics.
func (r *Report) DTR() bool {
	for _, lr := range r.Levels {
		if lr.CompileErr == nil && lr.RunErr == nil && lr.Output != r.Reference {
			return true
		}
	}
	return false
}

// Detected returns the strongest-attribution oracle that fired, with
// the paper's reporting convention: a crash or rejection is reported as
// NC; otherwise a mismatch against the reference is DT-R; a pure
// cross-level difference is DT-O.
func (r *Report) Detected() Oracle {
	switch {
	case r.NC():
		return OracleNC
	case r.DTR():
		return OracleDTR
	case r.DTO():
		return OracleDTO
	}
	return OracleNone
}

// CampaignConfig drives a fuzzing campaign against one compiler build.
type CampaignConfig struct {
	Preset   string
	Programs int   // max programs to generate
	Size     int   // fragments per program
	Seed     int64 // base seed; program i uses Seed+i
	Bugs     bugs.Set
	// StopAtFirst stops at the first detection.
	StopAtFirst bool

	// Timeout is the per-program wall-clock budget across the verify,
	// compile and interpret stages (0 = unbounded). An expired budget
	// is recorded as a VerdictTimeout, not a crash or detection.
	Timeout time.Duration
	// MaxRetries bounds re-attempts of a seed whose failure was
	// transient — injected faults and fault-era timeouts (0 = no
	// retries). Deterministic failures are never retried.
	MaxRetries int
	// RetryBackoff is the base delay between attempts, doubled per
	// retry (0 = DefaultRetryBackoff).
	RetryBackoff time.Duration
	// Faults, when non-nil, enables deterministic fault injection:
	// each program seed derives its own injector via Faults.ForSeed,
	// so a campaign's fault schedule depends only on (Faults, seed) —
	// never on worker count or scheduling.
	Faults *faultinject.Spec
	// Journal, when non-nil, receives every verdict in seed order as
	// the campaign progresses (see CreateJournal / OpenJournalForResume).
	Journal *Journal
	// Resumed maps seeds to verdicts recovered from a prior journal;
	// those seeds are replayed from the record instead of re-run, which
	// is how a resumed campaign reproduces the identical final report.
	Resumed map[int64]Verdict
	// FamilySize, when greater than 1, partitions the campaign's seed
	// space into mutation families of FamilySize consecutive seeds:
	// each family generates one base program from its first seed,
	// hoists main's scalar constants into entry arguments, and tests
	// every member on its own argument vector (member 0 replays the
	// original constants; later members mutate them deterministically
	// from their seeds). Family mode requires fault-free, unbounded
	// attempts: with Faults or Timeout configured it is ignored and
	// the classic per-seed campaign runs.
	FamilySize int
	// Batched selects the shared-work execution strategy for family
	// mode: one verify, one pass-pipeline compilation per build
	// configuration and one interp.Compile per compiled configuration
	// for the whole family, with members run through RunProgramArgs.
	// Batched is purely an execution strategy — verdicts, journals and
	// ReportText are byte-identical with it on or off — and has no
	// effect outside family mode.
	Batched bool
	// Telemetry, when non-nil, receives stage spans, verdict counters,
	// generator coverage and cache/journal gauges as the campaign runs
	// (see NewCampaignTelemetry). Telemetry observes and never steers:
	// verdicts and reports are byte-identical with it on or off, and a
	// nil Telemetry keeps every instrumentation point at a bare nil
	// check.
	Telemetry *CampaignTelemetry
	// Coverage, when non-nil, enables semantic-coverage collection:
	// every seed runs with a fresh coverage.Map threaded through the
	// generator, compiler and interpreter, its summary rides the
	// seed's Verdict (and journal line), and the sequenced summaries
	// fold into a campaign-wide union (see NewCampaignCoverage).
	// Observation-only, exactly like Telemetry; family mode ignores it
	// (see coverage.go).
	Coverage *CampaignCoverage
	// Plans, when non-empty, switches the campaign to plan mode (the
	// -fuzz-pipelines flag): every program is tested under these
	// sampled legal compilation plans instead of the fixed build
	// configurations, with DT-P joining the oracle set. Plans must all
	// share cfg.Preset and pass compiler.ValidatePlan. Plan mode and
	// family mode are mutually exclusive; with Plans set, FamilySize
	// is ignored.
	Plans []compiler.Plan
}

// Detection records one detected difference. Exactly one of Report
// (classic mode) and PlanReport (plan mode) is non-nil.
type Detection struct {
	Seed     int64
	Oracle   Oracle
	Program  *ir.Module
	Expected string
	Report   *Report
	// Plan is the Key of the compilation plan the detection is
	// attributed to; PlanReport holds the full per-plan record.
	Plan       string
	PlanReport *PlanReport
}

// CampaignResult summarises a campaign.
type CampaignResult struct {
	Programs   int
	Detections []Detection
	ByOracle   map[Oracle]int

	// Verdicts records every seed's final outcome, in seed order —
	// the in-memory mirror of the campaign journal.
	Verdicts []Verdict
	// StageFailures and Timeouts tally the contained failures; Skipped
	// tallies family members with no defined reference behaviour.
	StageFailures int
	Timeouts      int
	Skipped       int
	// Quarantined lists the seeds that never produced a testable
	// attempt, in seed order.
	Quarantined []int64

	// Plans and PlanSet describe the sampled plan set of a plan-mode
	// campaign (zero otherwise): the set size and its fingerprint.
	Plans   int
	PlanSet uint64
	// DistinctDetections counts the unique (program fingerprint, plan)
	// pairs among plan-mode detections — the dedup the paper's triage
	// needs when many seeds regenerate the same failing program.
	DistinctDetections int

	planSeen map[string]bool // (program|plan) dedup set behind DistinctDetections
}

func newCampaignResult() *CampaignResult {
	return &CampaignResult{ByOracle: make(map[Oracle]int)}
}

// notePlans stamps the plan-set identity onto the result (no-op
// outside plan mode). Both engines call it before recording verdicts.
func (res *CampaignResult) notePlans(cfg *CampaignConfig) {
	if len(cfg.Plans) == 0 {
		return
	}
	res.Plans = len(cfg.Plans)
	res.PlanSet = compiler.PlanSetFingerprint(cfg.Plans)
}

// record folds one verdict (and its detection, if any) into the
// result, replaying exactly the serial loop's accounting. It reports
// whether the verdict is a detection (the StopAtFirst trigger).
func (res *CampaignResult) record(v Verdict, det *Detection) bool {
	res.Programs++
	res.Verdicts = append(res.Verdicts, v)
	switch v.Kind {
	case VerdictStageFailure:
		res.StageFailures++
	case VerdictTimeout:
		res.Timeouts++
	case VerdictSkipped:
		res.Skipped++
	}
	if v.Quarantined {
		res.Quarantined = append(res.Quarantined, v.Seed)
	}
	if v.Kind != VerdictDetection {
		return false
	}
	if det == nil {
		det = resumedDetection(v)
	}
	res.Detections = append(res.Detections, *det)
	res.ByOracle[v.Oracle]++
	if v.Plan != "" {
		key := fmt.Sprintf("%016x|%s", v.Program, v.Plan)
		if res.planSeen == nil {
			res.planSeen = make(map[string]bool)
		}
		if !res.planSeen[key] {
			res.planSeen[key] = true
			res.DistinctDetections++
		}
	}
	return true
}

// RunCampaign generates Programs programs with Ratte's semantics-guided
// generator and differentially tests each one.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	return RunCampaignCtx(context.Background(), cfg)
}

// RunCampaignCtx is RunCampaign under a caller context: cancelling ctx
// (a signal handler, a test deadline) stops the campaign after the
// in-flight seed and returns the partial result together with
// ctx.Err(), with every completed verdict already journaled — the
// partial run is resumable via CampaignConfig.Resumed.
func RunCampaignCtx(ctx context.Context, cfg CampaignConfig) (*CampaignResult, error) {
	cfg.Telemetry.begin(cfg.Programs)
	cfg.Telemetry.attachJournal(cfg.Journal)
	cfg.Telemetry.attachPlans(cfg.Plans)
	if familyActive(&cfg) {
		return runCampaignFamilies(ctx, cfg)
	}
	res := newCampaignResult()
	res.notePlans(&cfg)
	for i := 0; i < cfg.Programs; i++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		seed := cfg.Seed + int64(i)
		if v, ok := cfg.Resumed[seed]; ok {
			isDetection := res.record(v, nil)
			cfg.Telemetry.onVerdict(v)
			cfg.Coverage.onVerdict(v)
			if isDetection && cfg.StopAtFirst {
				return res, nil
			}
			continue
		}
		out := runSeed(ctx, &cfg, seed)
		if out.genErr != nil {
			return nil, fmt.Errorf("difftest: generation failed: %w", out.genErr)
		}
		if out.aborted {
			return res, ctx.Err()
		}
		isDetection := res.record(out.verdict, out.detection)
		cfg.Telemetry.onVerdict(out.verdict)
		cfg.Coverage.onVerdict(out.verdict)
		if cfg.Journal != nil {
			t0 := cfg.Telemetry.stageStart()
			err := cfg.Journal.Append(out.verdict)
			cfg.Telemetry.journalDone(t0)
			if err != nil {
				return res, fmt.Errorf("difftest: journal: %w", err)
			}
		}
		if isDetection && cfg.StopAtFirst {
			return res, nil
		}
	}
	return res, nil
}

// Classification is the Table 4 measurement of one program.
type Classification struct {
	// Compiled: the program passes the frontend verifier and every
	// pass of the preset's pipeline (at O1, matching the paper's use of
	// full compilation pipelines; the "unmod" preset only runs
	// -canonicalize, as the paper's footnote describes).
	Compiled bool
	// UBFree: the Ratte reference interpreter evaluates the program to
	// completion with a deterministic, well-defined output.
	UBFree bool
}

// Classify measures a (possibly invalid, possibly UB-carrying) module
// the way the paper's §4.2 evaluates MLIRSmith output.
func Classify(m *ir.Module, preset string) Classification {
	var cl Classification
	if preset == "unmod" {
		// No full lowering pipeline exists for arbitrary dialect mixes;
		// compileability is the verifier plus -canonicalize.
		if err := verify.Module(m, dialects.SourceSpecs()); err == nil {
			pipe, _ := compiler.NewPipeline("canonicalize")
			mm := m.Clone()
			cl.Compiled = pipe.Run(mm, &compiler.Options{}) == nil
		}
	} else {
		c := &compiler.Compiler{Level: compiler.O1}
		_, err := c.Compile(m, preset)
		cl.Compiled = err == nil
	}
	if !cl.Compiled {
		return cl
	}
	// The compiled reference interpreter: Classify is called in bulk
	// (the §4.2 measurement classifies thousands of modules) and the
	// UB-free run is its hot half.
	in := dialects.NewCompiledReferenceInterpreter()
	in.MaxSteps = 2_000_000
	if _, err := in.Run(m, "main"); err == nil {
		cl.UBFree = true
	} else if !interp.IsUB(err) && !interp.IsTrap(err) {
		// Structural interpretation failure (e.g. unsupported op):
		// neither compiled-and-meaningful nor UB — count as not UB-free.
		cl.UBFree = false
	}
	return cl
}
