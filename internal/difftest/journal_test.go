package difftest_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/difftest"
)

// journalCfg is a small campaign with real detections, used by every
// journal test.
func journalCfg(programs int) difftest.CampaignConfig {
	return difftest.CampaignConfig{
		Preset:   "ariths",
		Programs: programs,
		Size:     16,
		Seed:     97,
		Bugs:     bugs.Only(bugs.RemoveDeadValuesCall),
	}
}

func runJournaled(t *testing.T, path string, cfg difftest.CampaignConfig) *difftest.CampaignResult {
	t.Helper()
	j, err := difftest.CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = j
	res, err := difftest.RunCampaign(cfg)
	if cerr := j.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestJournalRoundTrip: every verdict a campaign records is recovered
// by OpenJournalForResume, keyed by seed.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	cfg := journalCfg(12)
	res := runJournaled(t, path, cfg)

	j, resumed, err := difftest.OpenJournalForResume(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(resumed) != len(res.Verdicts) {
		t.Fatalf("recovered %d verdicts, campaign recorded %d", len(resumed), len(res.Verdicts))
	}
	var replay []difftest.Verdict
	for _, v := range res.Verdicts {
		got, ok := resumed[v.Seed]
		if !ok {
			t.Fatalf("seed %d missing from journal", v.Seed)
		}
		replay = append(replay, got)
	}
	if d := difftest.DiffVerdicts(res.Verdicts, replay); d != "" {
		t.Fatalf("journaled verdicts differ from in-memory: %s", d)
	}
}

// TestJournalResumeEqualsFresh: a campaign journaled halfway and then
// resumed (even extended to more programs) must reproduce the exact
// final report of an uninterrupted run — same verdicts, same report
// text, byte for byte — under both engines.
func TestJournalResumeEqualsFresh(t *testing.T) {
	fresh, err := difftest.RunCampaign(journalCfg(20))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	runJournaled(t, path, journalCfg(9)) // the "interrupted" first half

	for _, workers := range []int{1, 4} {
		cfg := journalCfg(20)
		j, resumed, err := difftest.OpenJournalForResume(path, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(resumed) != 9 {
			t.Fatalf("workers=%d: resumed %d verdicts, want 9", workers, len(resumed))
		}
		cfg.Resumed = resumed
		res, err := difftest.RunCampaignParallelCtx(context.Background(), cfg, workers)
		j.Close()
		if err != nil {
			t.Fatal(err)
		}
		if d := difftest.DiffVerdicts(fresh.Verdicts, res.Verdicts); d != "" {
			t.Fatalf("workers=%d: resumed verdicts differ from fresh: %s", workers, d)
		}
		if a, b := difftest.ReportText(fresh), difftest.ReportText(res); a != b {
			t.Fatalf("workers=%d: resumed report differs from fresh:\n--- fresh\n%s--- resumed\n%s", workers, a, b)
		}
	}
}

// TestJournalTornLastLine: a crash mid-append tears at most the final
// line; recovery must keep every complete verdict, drop the torn tail,
// compact atomically, and resume to the same final report.
func TestJournalTornLastLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	cfg := journalCfg(10)
	runJournaled(t, path, cfg)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last verdict line mid-record.
	torn := data[:len(data)-7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j, resumed, err := difftest.OpenJournalForResume(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 9 {
		t.Fatalf("recovered %d verdicts after torn line, want 9", len(resumed))
	}

	// Recovery compacted the file: intact lines only, newline-terminated.
	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) == 0 || fixed[len(fixed)-1] != '\n' {
		t.Fatalf("compacted journal not newline-terminated")
	}
	if got := strings.Count(string(fixed), "\n"); got != 10 { // header + 9 verdicts
		t.Fatalf("compacted journal has %d lines, want 10", got)
	}

	// Resuming the compacted journal re-runs the dropped seed and lands
	// on the uninterrupted run's exact report.
	resumeCfg := cfg
	resumeCfg.Resumed = resumed
	resumeCfg.Journal = j
	res, err := difftest.RunCampaign(resumeCfg)
	j.Close()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := difftest.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := difftest.DiffVerdicts(fresh.Verdicts, res.Verdicts); d != "" {
		t.Fatalf("post-recovery verdicts differ from fresh: %s", d)
	}
}

// TestJournalHeaderMismatch: a journal must refuse to resume under a
// campaign config that would reinterpret its verdicts.
func TestJournalHeaderMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	runJournaled(t, path, journalCfg(3))

	bad := []struct {
		name   string
		mutate func(*difftest.CampaignConfig)
	}{
		{"preset", func(c *difftest.CampaignConfig) { c.Preset = "tensor" }},
		{"seed", func(c *difftest.CampaignConfig) { c.Seed = 98 }},
		{"size", func(c *difftest.CampaignConfig) { c.Size = 17 }},
		{"bugs", func(c *difftest.CampaignConfig) { c.Bugs = bugs.None() }},
		{"faults", func(c *difftest.CampaignConfig) {
			c.Faults = &faultSpec
		}},
	}
	for _, tc := range bad {
		cfg := journalCfg(3)
		tc.mutate(&cfg)
		if _, _, err := difftest.OpenJournalForResume(path, cfg); err == nil {
			t.Errorf("%s: resume under a mismatched config succeeded, want error", tc.name)
		}
	}

	// A larger program count is NOT a mismatch: resume may extend a run.
	cfg := journalCfg(30)
	j, resumed, err := difftest.OpenJournalForResume(path, cfg)
	if err != nil {
		t.Fatalf("extending the program count should resume cleanly: %v", err)
	}
	j.Close()
	if len(resumed) != 3 {
		t.Fatalf("resumed %d verdicts, want 3", len(resumed))
	}
}
