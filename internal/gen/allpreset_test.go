package gen_test

import (
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/dialects"
	"ratte/internal/gen"
	"ratte/internal/ir"
	"ratte/internal/verify"
)

// TestAllPresetComposes: the combined "all" preset — derived purely by
// composing the per-dialect generator sets — keeps every guarantee: its
// programs verify, interpret to the predicted output, and compile +
// execute identically at every level.
func TestAllPresetComposes(t *testing.T) {
	sawScf, sawLinalg, sawTensor := false, false, false
	for seed := int64(0); seed < 15; seed++ {
		p, err := gen.Generate(gen.Config{Preset: "all", Size: 30, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.Module(p.Module, dialects.SourceSpecs()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := dialects.NewReferenceInterpreter().Run(p.Module, "main")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Output != p.Expected {
			t.Fatalf("seed %d: output %q, expected %q", seed, res.Output, p.Expected)
		}
		p.Module.Walk(func(op *ir.Operation) bool {
			switch op.Dialect() {
			case "scf":
				sawScf = true
			case "linalg":
				sawLinalg = true
			case "tensor":
				sawTensor = true
			}
			return true
		})
		for _, level := range compiler.OptLevels {
			c := &compiler.Compiler{Level: level, Bugs: bugs.None()}
			lowered, err := c.Compile(p.Module, "all")
			if err != nil {
				t.Fatalf("seed %d O%d: %v", seed, int(level), err)
			}
			out, err := dialects.NewExecutor().Run(lowered, "main")
			if err != nil {
				t.Fatalf("seed %d O%d: %v", seed, int(level), err)
			}
			if out.Output != p.Expected {
				t.Fatalf("seed %d O%d: output %q, expected %q", seed, int(level), out.Output, p.Expected)
			}
		}
	}
	if !sawScf || !sawLinalg || !sawTensor {
		t.Errorf("combined corpus missed a dialect: scf=%v linalg=%v tensor=%v", sawScf, sawLinalg, sawTensor)
	}
}
