package gen

import (
	"fmt"

	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/scoped"
)

// randShape draws a small concrete shape (rank 1–2, extents 1–4).
func (g *generator) randShape() []int64 {
	rank := 1 + g.r.Intn(2)
	shape := make([]int64, rank)
	for i := range shape {
		shape[i] = int64(1 + g.r.Intn(4))
	}
	return shape
}

// elemTypes are the element types tensor generators draw from.
var elemTypes = []ir.Type{ir.I8, ir.I32, ir.I64}

func (g *generator) randElemType() ir.Type { return elemTypes[g.r.Intn(len(elemTypes))] }

// tensorCandidate picks a visible tensor, optionally filtered.
func (g *generator) tensorCandidate(pred func(v ir.Value, t *rtval.Tensor) bool) (ir.Value, *rtval.Tensor, bool) {
	cands := g.store.Candidates(func(v ir.Value, rt rtval.Value) bool {
		t, ok := rt.(*rtval.Tensor)
		return ok && (pred == nil || pred(v, t))
	})
	if len(cands) == 0 {
		return ir.Value{}, nil, false
	}
	c := cands[g.r.Intn(len(cands))]
	return c.Val, c.RT.(*rtval.Tensor), true
}

// ensureTensor returns a visible tensor, creating a dense constant if
// none exists.
func (g *generator) ensureTensor() (ir.Value, *rtval.Tensor, error) {
	if v, t, ok := g.tensorCandidate(nil); ok && g.r.Intn(4) != 0 {
		return v, t, nil
	}
	v, err := g.genDenseConstValue(g.randShape(), g.randElemType())
	if err != nil {
		return ir.Value{}, nil, err
	}
	rt, _ := g.store.Value(v.ID)
	return v, rt.(*rtval.Tensor), nil
}

// genDenseConstValue emits a dense-constant tensor and returns it.
func (g *generator) genDenseConstValue(shape []int64, elem ir.Type) (ir.Value, error) {
	tt := ir.TensorOf(shape, elem)
	n := tt.NumElements()
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rtOf(g.interestingValue(elem), elem).Signed()
	}
	op := ir.NewOp("arith.constant")
	op.Attrs.Set("value", ir.DenseAttr(vals, tt))
	res := g.store.FreshValue(tt)
	op.Results = []ir.Value{res}
	return res, g.emit(op)
}

func genDenseConstant(g *generator) error {
	_, err := g.genDenseConstValue(g.randShape(), g.randElemType())
	return err
}

// genTensorEmpty emits tensor.empty, possibly with dynamic dims whose
// extents come from index constants (keeping the concrete shape known
// to the store).
func genTensorEmpty(g *generator) error {
	shape := g.randShape()
	elem := g.randElemType()
	synShape := append([]int64(nil), shape...)
	var extents []ir.Value
	for i := range synShape {
		if g.r.Intn(3) == 0 {
			ext, err := g.indexConst(shape[i])
			if err != nil {
				return err
			}
			extents = append(extents, ext)
			synShape[i] = ir.DynamicSize
		}
	}
	op := ir.NewOp("tensor.empty")
	op.Operands = extents
	op.Results = []ir.Value{g.store.FreshValue(ir.TensorOf(synShape, elem))}
	return g.emit(op)
}

// genLinalgFill fills a tensor with a defined scalar, producing a fully
// well-defined tensor (the paper's canonical definedness source).
func genLinalgFill(g *generator) error {
	dest, destRT, err := g.ensureTensor()
	if err != nil {
		return err
	}
	s, err := g.anyScalar(destRT.Elem)
	if err != nil {
		return err
	}
	op := ir.NewOp("linalg.fill")
	op.Operands = []ir.Value{s, dest}
	op.Results = []ir.Value{g.store.FreshValue(dest.Type)}
	return g.emit(op)
}

// inBoundsIndices emits index constants for a uniformly random
// in-bounds position of the given concrete shape — the store's concrete
// shape information is what rules out the out-of-bounds UB of the
// paper's Figure 4.
func (g *generator) inBoundsIndices(shape []int64) ([]ir.Value, []int64, error) {
	vals := make([]ir.Value, len(shape))
	pos := make([]int64, len(shape))
	for i, d := range shape {
		if d <= 0 {
			return nil, nil, fmt.Errorf("empty dimension %d", i)
		}
		pos[i] = int64(g.r.Intn(int(d)))
		v, err := g.indexConst(pos[i])
		if err != nil {
			return nil, nil, err
		}
		vals[i] = v
	}
	return vals, pos, nil
}

func genTensorInsert(g *generator) error {
	dest, destRT, err := g.ensureTensor()
	if err != nil {
		return err
	}
	if destRT.NumElements() == 0 {
		return nil
	}
	s, err := g.anyScalar(destRT.Elem)
	if err != nil {
		return err
	}
	idx, _, err := g.inBoundsIndices(destRT.Shape)
	if err != nil {
		return err
	}
	op := ir.NewOp("tensor.insert")
	op.Operands = append([]ir.Value{s, dest}, idx...)
	op.Results = []ir.Value{g.store.FreshValue(dest.Type)}
	return g.emit(op)
}

func genTensorExtract(g *generator) error {
	src, srcRT, err := g.ensureTensor()
	if err != nil {
		return err
	}
	if srcRT.NumElements() == 0 {
		return nil
	}
	idx, _, err := g.inBoundsIndices(srcRT.Shape)
	if err != nil {
		return err
	}
	op := ir.NewOp("tensor.extract")
	op.Operands = append([]ir.Value{src}, idx...)
	op.Results = []ir.Value{g.store.FreshValue(srcRT.Elem)}
	return g.emit(op)
}

func genTensorDim(g *generator) error {
	src, srcRT, err := g.ensureTensor()
	if err != nil {
		return err
	}
	d, err := g.indexConst(int64(g.r.Intn(len(srcRT.Shape))))
	if err != nil {
		return err
	}
	op := ir.NewOp("tensor.dim")
	op.Operands = []ir.Value{src, d}
	op.Results = []ir.Value{g.store.FreshValue(ir.Index)}
	return g.emit(op)
}

// genTensorCast casts between syntactic shapes that are both
// compatible with the *concrete* shape (paper Figure 11's tensor.cast
// example): each target dim is either the true runtime extent or `?`,
// so the cast can never fail at run time.
func genTensorCast(g *generator) error {
	src, srcRT, err := g.ensureTensor()
	if err != nil {
		return err
	}
	target := make([]int64, len(srcRT.Shape))
	for i, d := range srcRT.Shape {
		if g.r.Intn(2) == 0 {
			target[i] = ir.DynamicSize
		} else {
			target[i] = d
		}
	}
	op := ir.NewOp("tensor.cast")
	op.Operands = []ir.Value{src}
	op.Results = []ir.Value{g.store.FreshValue(ir.TensorOf(target, srcRT.Elem))}
	return g.emit(op)
}

// genTensorGenerate builds a tensor.generate whose body is composed of
// total operations only: the body runs for every index point, so only
// ops with no input-dependent UB are allowed.
func genTensorGenerate(g *generator) error {
	if g.depth >= 2 {
		return genDenseConstant(g)
	}
	shape := g.randShape()
	elem := g.randElemType()
	synShape := append([]int64(nil), shape...)
	var extents []ir.Value
	for i := range synShape {
		if g.r.Intn(2) == 0 {
			ext, err := g.indexConst(shape[i])
			if err != nil {
				return err
			}
			extents = append(extents, ext)
			synShape[i] = ir.DynamicSize
		}
	}

	g.store.PushScope(scoped.Standard)
	g.depth++
	savedBlock := g.block
	body := &ir.Block{Label: "bb0"}
	g.block = body

	args := make([]ir.Value, len(shape))
	for i := range args {
		args[i] = g.store.FreshValue(ir.Index)
		if err := g.store.BindArg(args[i], sampleFor(ir.Index)); err != nil {
			g.block = savedBlock
			g.depth--
			g.store.PopScope()
			return err
		}
	}
	body.Args = args

	var genErr error
	nOps := 1 + g.r.Intn(3)
	for i := 0; i < nOps && genErr == nil; i++ {
		genErr = g.genTotalOp()
	}
	var yv ir.Value
	if genErr == nil {
		yv, genErr = g.anyScalar(elem)
	}
	g.block = savedBlock
	g.depth--
	g.store.PopScope()
	if genErr != nil {
		return genErr
	}

	y := ir.NewOp("tensor.yield")
	y.Operands = []ir.Value{yv}
	body.Append(y)

	op := ir.NewOp("tensor.generate")
	op.Operands = extents
	op.Regions = []*ir.Region{{Blocks: []*ir.Block{body}}}
	op.Results = []ir.Value{g.store.FreshValue(ir.TensorOf(synShape, elem))}
	return g.emit(op)
}
