package gen

import "fmt"

// poolFor assembles the fragment-generator pool for a preset by
// composing the per-dialect generator sets — the paper's point that
// fuzzers for dialect combinations are cheaply derived from per-dialect
// fuzzers (Challenge 3).
func poolFor(preset string) ([]opGen, error) {
	switch preset {
	case "ariths":
		// {arith, scf, func, vector} — Table 2 row 1.
		pool := arithOpGens()
		pool = append(pool, opGen{"scf.if", 4, genScfIf})
		return pool, nil

	case "linalggeneric":
		// {linalg, arith, func, vector} — Table 2 row 2.
		pool := arithOpGens()
		pool = append(pool,
			opGen{"linalg.generic", 8, genLinalgGeneric},
			opGen{"linalg.fill", 3, genLinalgFill},
			opGen{"tensor.empty", 2, genTensorEmpty},
			opGen{"dense constant", 3, genDenseConstant},
			opGen{"tensor.extract", 4, genTensorExtract},
		)
		return pool, nil

	case "all":
		// Every dialect combined — the composability dividend the paper
		// argues for (Challenge 3): derived from the per-dialect
		// generator sets with no new code.
		pool := arithOpGens()
		pool = append(pool,
			opGen{"scf.if", 4, genScfIf},
			opGen{"linalg.generic", 5, genLinalgGeneric},
			opGen{"linalg.fill", 2, genLinalgFill},
			opGen{"dense constant", 3, genDenseConstant},
			opGen{"tensor.empty", 2, genTensorEmpty},
			opGen{"tensor.insert", 3, genTensorInsert},
			opGen{"tensor.extract", 3, genTensorExtract},
			opGen{"tensor.dim", 1, genTensorDim},
			opGen{"tensor.cast", 2, genTensorCast},
			opGen{"tensor.generate", 3, genTensorGenerate},
		)
		return pool, nil

	case "tensor":
		// {tensor, arith, func, vector} — Table 2 row 3.
		pool := arithOpGens()
		pool = append(pool,
			opGen{"dense constant", 4, genDenseConstant},
			opGen{"tensor.empty", 3, genTensorEmpty},
			opGen{"linalg.fill", 3, genLinalgFill},
			opGen{"tensor.insert", 4, genTensorInsert},
			opGen{"tensor.extract", 4, genTensorExtract},
			opGen{"tensor.dim", 2, genTensorDim},
			opGen{"tensor.cast", 3, genTensorCast},
			opGen{"tensor.generate", 4, genTensorGenerate},
		)
		return pool, nil
	}
	return nil, fmt.Errorf("gen: unknown preset %q (want one of %v)", preset, AllPresets())
}
