package gen_test

import (
	"testing"

	"ratte/internal/gen"
	"ratte/internal/ir"
)

// presetDialects pins Table 2: each preset may only emit operations of
// its declared dialect combination.
var presetDialects = map[string]map[string]bool{
	"ariths":        {"arith": true, "scf": true, "func": true, "vector": true, "builtin": true},
	"linalggeneric": {"linalg": true, "arith": true, "func": true, "vector": true, "tensor": true, "builtin": true},
	"tensor":        {"tensor": true, "arith": true, "func": true, "vector": true, "linalg": true, "builtin": true},
}

// Note: the linalg/tensor presets share tensor materialisation ops
// (tensor.empty / linalg.fill), exactly as the paper's Table 2 pairs
// linalg with tensors as data.

func TestPresetsRespectDialectCombination(t *testing.T) {
	for preset, allowed := range presetDialects {
		for seed := int64(0); seed < 10; seed++ {
			p, err := gen.Generate(gen.Config{Preset: preset, Size: 30, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			p.Module.Walk(func(op *ir.Operation) bool {
				if !allowed[op.Dialect()] {
					t.Errorf("%s seed %d: op %s outside the preset's dialects", preset, seed, op.Name)
				}
				return true
			})
		}
	}
}

// TestGeneratedProgramsAreLoopFree pins the paper's §1 restriction: the
// generator emits no looping constructs (scf.for / cf back edges); loop
// behaviour is exercised via lowering of linalg.generic and
// tensor.generate instead.
func TestGeneratedProgramsAreLoopFree(t *testing.T) {
	for _, preset := range gen.Presets() {
		for seed := int64(0); seed < 10; seed++ {
			p, err := gen.Generate(gen.Config{Preset: preset, Size: 30, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			p.Module.Walk(func(op *ir.Operation) bool {
				if op.Name == "scf.for" || op.Dialect() == "cf" {
					t.Errorf("%s seed %d: generator emitted loop construct %s", preset, seed, op.Name)
				}
				return true
			})
		}
	}
}

// TestMainHasNoArguments: generated entry points are self-contained.
func TestMainHasNoArguments(t *testing.T) {
	p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 10, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	main := p.Module.Func("main")
	if main == nil {
		t.Fatal("no main")
	}
	ft, err := ir.FuncType(main)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Inputs) != 0 || len(ft.Results) != 0 {
		t.Errorf("main signature %v", ft)
	}
}

// TestHelperFunctionsAreCalled: every generated helper is reachable
// (the generator never leaves dead functions around).
func TestHelperFunctionsAreCalled(t *testing.T) {
	p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 40, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	called := map[string]bool{}
	p.Module.Walk(func(op *ir.Operation) bool {
		if op.Name == "func.call" {
			if s, ok := op.Attrs.Get("callee").(ir.SymbolRefAttr); ok {
				called[s.Name] = true
			}
		}
		return true
	})
	for _, f := range p.Module.Funcs() {
		sym := ir.FuncSymbol(f)
		if sym != "main" && !called[sym] {
			t.Errorf("helper @%s is never called", sym)
		}
	}
}

// TestExpectedOutputIsNewlineTerminated: oracle comparison relies on
// line-structured output.
func TestExpectedOutputIsNewlineTerminated(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p, err := gen.Generate(gen.Config{Preset: "tensor", Size: 15, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if p.Expected == "" || p.Expected[len(p.Expected)-1] != '\n' {
			t.Errorf("seed %d: expected output %q not newline-terminated", seed, p.Expected)
		}
	}
}

// TestMaxPrintsCap: the epilogue respects the configured output budget
// (tensor extractions may add a few more lines, bounded separately).
func TestMaxPrintsCap(t *testing.T) {
	p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 50, Seed: 3, MaxPrints: 2})
	if err != nil {
		t.Fatal(err)
	}
	prints := 0
	p.Module.Walk(func(op *ir.Operation) bool {
		if op.Name == "vector.print" {
			prints++
		}
		return true
	})
	if prints > 6 {
		t.Errorf("MaxPrints=2 produced %d prints", prints)
	}
	if prints == 0 {
		t.Error("no prints at all")
	}
}
