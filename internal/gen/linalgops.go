package gen

import (
	"ratte/internal/ir"
	"ratte/internal/scoped"
)

// genLinalgGeneric builds a linalg.generic over permutation-based
// indexing maps (the paper's supported subset): a random iteration
// domain, 1–2 inputs and one output whose shapes are the domain extents
// permuted through their maps, and a body of total operations. All
// operands are fully defined, so every element of the result is
// defined regardless of which elements the body reads.
func genLinalgGeneric(g *generator) error {
	if g.depth >= 2 {
		return genDenseConstant(g)
	}
	rank := 1 + g.r.Intn(2)
	extents := make([]int64, rank)
	for i := range extents {
		extents[i] = int64(1 + g.r.Intn(3))
	}
	elem := g.randElemType()
	nIns := 1 + g.r.Intn(2)
	nOps := nIns + 1 // plus one output

	maps := make([]ir.AffineMapAttr, nOps)
	operands := make([]ir.Value, nOps)
	for i := 0; i < nOps; i++ {
		perm := g.r.Perm(rank)
		maps[i] = ir.PermutationMap(rank, perm...)
		shape := make([]int64, rank)
		for j, d := range perm {
			shape[j] = extents[d]
		}
		// Materialise a fully-defined operand of the permuted shape:
		// either a dense constant or a filled tensor.
		var v ir.Value
		var err error
		if g.r.Intn(2) == 0 {
			v, err = g.genDenseConstValue(shape, elem)
		} else {
			v, err = g.genFilledTensor(shape, elem)
		}
		if err != nil {
			return err
		}
		operands[i] = v
	}

	// Body: one scalar argument per operand.
	g.store.PushScope(scoped.Standard)
	g.depth++
	savedBlock := g.block
	body := &ir.Block{Label: "bb0"}
	g.block = body

	args := make([]ir.Value, nOps)
	var genErr error
	for i := range args {
		args[i] = g.store.FreshValue(elem)
		if err := g.store.BindArg(args[i], sampleFor(elem)); err != nil {
			genErr = err
			break
		}
	}
	body.Args = args

	nBodyOps := 1 + g.r.Intn(3)
	for i := 0; i < nBodyOps && genErr == nil; i++ {
		genErr = g.genTotalOp()
	}
	var yv ir.Value
	if genErr == nil {
		yv, genErr = g.anyScalar(elem)
	}
	g.block = savedBlock
	g.depth--
	g.store.PopScope()
	if genErr != nil {
		return genErr
	}

	y := ir.NewOp("linalg.yield")
	y.Operands = []ir.Value{yv}
	body.Append(y)

	iters := make([]ir.Attribute, rank)
	for i := range iters {
		iters[i] = ir.StrAttr("parallel")
	}
	mapAttrs := make([]ir.Attribute, nOps)
	for i, m := range maps {
		mapAttrs[i] = m
	}

	op := ir.NewOp("linalg.generic")
	op.Operands = operands
	op.Regions = []*ir.Region{{Blocks: []*ir.Block{body}}}
	op.Attrs.Set("indexing_maps", ir.ArrayAttr{Elems: mapAttrs})
	op.Attrs.Set("iterator_types", ir.ArrayAttr{Elems: iters})
	op.Attrs.Set("operand_segment_sizes", ir.ArrayAttrOf(
		ir.IntAttr(int64(nIns), ir.I64), ir.IntAttr(1, ir.I64)))
	op.Results = []ir.Value{g.store.FreshValue(operands[nIns].Type)}
	return g.emit(op)
}

// genFilledTensor materialises a defined tensor of the exact shape via
// tensor.empty + linalg.fill.
func (g *generator) genFilledTensor(shape []int64, elem ir.Type) (ir.Value, error) {
	empty := ir.NewOp("tensor.empty")
	tt := ir.TensorOf(shape, elem)
	ev := g.store.FreshValue(tt)
	empty.Results = []ir.Value{ev}
	if err := g.emit(empty); err != nil {
		return ir.Value{}, err
	}
	s, err := g.anyScalar(elem)
	if err != nil {
		return ir.Value{}, err
	}
	fill := ir.NewOp("linalg.fill")
	fill.Operands = []ir.Value{s, ev}
	res := g.store.FreshValue(tt)
	fill.Results = []ir.Value{res}
	return res, g.emit(fill)
}
