package gen_test

import (
	"testing"

	"ratte/internal/dialects"
	"ratte/internal/gen"
	"ratte/internal/ir"
)

// TestCorpusCoversOpInventory: across a modest corpus, the composed
// generators exercise every supported source operation (except scf.for,
// which is deliberately never generated — the paper's loop-free
// restriction; it enters programs only through lowering). A fuzzer that
// silently stops emitting an operation loses its bug-finding power for
// that op's passes, so coverage is a regression-guarded property.
func TestCorpusCoversOpInventory(t *testing.T) {
	seen := map[string]bool{}
	for _, preset := range gen.Presets() {
		for seed := int64(0); seed < 40; seed++ {
			p, err := gen.Generate(gen.Config{Preset: preset, Size: 35, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			p.Module.Walk(func(op *ir.Operation) bool {
				seen[op.Name] = true
				return true
			})
		}
	}
	var missing []string
	for _, op := range dialects.SupportedSourceOps() {
		if op == "scf.for" {
			continue // loop-free generation by design
		}
		if !seen[op] {
			missing = append(missing, op)
		}
	}
	if len(missing) > 0 {
		t.Errorf("corpus never exercised: %v", missing)
	}
}

// TestCorpusValueDiversity: generated constants include the boundary
// values that production bugs hide behind.
func TestCorpusValueDiversity(t *testing.T) {
	seenValues := map[int64]bool{}
	for seed := int64(0); seed < 30; seed++ {
		p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 30, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		p.Module.Walk(func(op *ir.Operation) bool {
			if op.Name == "arith.constant" {
				if a, ok := op.Attrs.Get("value").(ir.IntegerAttr); ok {
					seenValues[a.Value] = true
				}
			}
			return true
		})
	}
	for _, boundary := range []int64{0, 1, -1, -9223372036854775808, 9223372036854775807, -9223372036854775807} {
		if !seenValues[boundary] {
			t.Errorf("boundary constant %d never generated", boundary)
		}
	}
}
