package gen

import (
	"ratte/internal/ir"
	"ratte/internal/rtval"
)

// epilogue appends output-producing code (paper §3.4): vector.print of
// values the well-definedness analysis has established are safe to
// observe. Scalars print directly; tensors print through an extraction
// of a concretely in-bounds, concretely defined element (so the lowered
// pipelines, which print scalars, handle the same programs). At least
// one value is always printed so every program is usable with the
// differential-testing oracle.
func (g *generator) epilogue() error {
	printed := 0

	// Defined scalars, shuffled, capped.
	scalars := g.store.Candidates(func(v ir.Value, rt rtval.Value) bool {
		i, ok := rt.(rtval.Int)
		return ok && i.Defined()
	})
	g.r.Shuffle(len(scalars), func(i, j int) { scalars[i], scalars[j] = scalars[j], scalars[i] })
	for _, c := range scalars {
		if printed >= g.cfg.MaxPrints {
			break
		}
		if err := g.emitPrint(c.Val); err != nil {
			return err
		}
		printed++
	}

	// One element out of each tensor whose chosen element is defined.
	tensors := g.store.Candidates(func(v ir.Value, rt rtval.Value) bool {
		_, ok := rt.(*rtval.Tensor)
		return ok
	})
	for _, c := range tensors {
		if printed >= g.cfg.MaxPrints+4 {
			break
		}
		t := c.RT.(*rtval.Tensor)
		if t.NumElements() == 0 {
			continue
		}
		// Find a defined element; sample a few random positions, then
		// fall back to a scan.
		pos, ok := g.findDefinedElement(t)
		if !ok {
			continue // entirely undefined (e.g. raw tensor.empty)
		}
		idx := make([]ir.Value, len(pos))
		for i, p := range pos {
			v, err := g.indexConst(p)
			if err != nil {
				return err
			}
			idx[i] = v
		}
		ext := ir.NewOp("tensor.extract")
		ext.Operands = append([]ir.Value{c.Val}, idx...)
		ext.Results = []ir.Value{g.store.FreshValue(t.Elem)}
		if err := g.emit(ext); err != nil {
			return err
		}
		if err := g.emitPrint(ext.Results[0]); err != nil {
			return err
		}
		printed++
	}

	if printed == 0 {
		v, err := g.freshConst(ir.I64, 0)
		if err != nil {
			return err
		}
		return g.emitPrint(v)
	}
	return nil
}

func (g *generator) emitPrint(v ir.Value) error {
	p := ir.NewOp("vector.print")
	p.Operands = []ir.Value{v}
	return g.emit(p)
}

// findDefinedElement locates a defined element's multi-index.
func (g *generator) findDefinedElement(t *rtval.Tensor) ([]int64, bool) {
	n := t.NumElements()
	// A few random probes first, for variety.
	for probe := 0; probe < 4; probe++ {
		flat := int64(g.r.Intn(int(n)))
		if t.Elems[flat].Defined() {
			return delinearize(flat, t.Shape), true
		}
	}
	for flat := int64(0); flat < n; flat++ {
		if t.Elems[flat].Defined() {
			return delinearize(flat, t.Shape), true
		}
	}
	return nil, false
}

func delinearize(flat int64, shape []int64) []int64 {
	pos := make([]int64, len(shape))
	for i := len(shape) - 1; i >= 0; i-- {
		pos[i] = flat % shape[i]
		flat /= shape[i]
	}
	return pos
}
