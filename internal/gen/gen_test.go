package gen_test

import (
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/dialects"
	"ratte/internal/gen"
	"ratte/internal/ir"
	"ratte/internal/verify"
)

// TestGeneratedProgramsAreValidAndUBFree is the generator's core
// guarantee (paper §4.1: "generators yield compileable programs that
// are free from undefined behaviours by construction"): every generated
// program must pass the static verifier, must round-trip through the
// printer/parser, and the reference interpreter must produce exactly
// the expected output computed during generation.
func TestGeneratedProgramsAreValidAndUBFree(t *testing.T) {
	for _, preset := range gen.Presets() {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			for seed := int64(0); seed < 30; seed++ {
				p, err := gen.Generate(gen.Config{Preset: preset, Size: 25, Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: generate: %v", seed, err)
				}
				if err := verify.Module(p.Module, dialects.SourceSpecs()); err != nil {
					t.Fatalf("seed %d: verify: %v\n%s", seed, err, ir.Print(p.Module))
				}
				// Textual round trip.
				text := ir.Print(p.Module)
				reparsed, err := ir.Parse(text)
				if err != nil {
					t.Fatalf("seed %d: reparse: %v", seed, err)
				}
				if ir.Print(reparsed) != text {
					t.Fatalf("seed %d: print/parse not a fixpoint", seed)
				}
				// The reference interpreter agrees with the
				// generation-time incremental evaluation.
				res, err := dialects.NewReferenceInterpreter().Run(reparsed, "main")
				if err != nil {
					t.Fatalf("seed %d: reference run rejected a generated program: %v\n%s", seed, err, text)
				}
				if res.Output != p.Expected {
					t.Fatalf("seed %d: interpreter output %q, generation-time oracle %q", seed, res.Output, p.Expected)
				}
			}
		})
	}
}

// TestGeneratedProgramsCompileAndAgree: with no injected bugs, every
// generated program compiles at every optimisation level and the
// executed output equals the reference output (the soundness of the
// whole differential setup: zero false positives on a correct
// compiler).
func TestGeneratedProgramsCompileAndAgree(t *testing.T) {
	for _, preset := range gen.Presets() {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			for seed := int64(100); seed < 112; seed++ {
				p, err := gen.Generate(gen.Config{Preset: preset, Size: 20, Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, level := range compiler.OptLevels {
					c := &compiler.Compiler{Level: level, Bugs: bugs.None(), VerifyBetweenPasses: true}
					lowered, err := c.Compile(p.Module, preset)
					if err != nil {
						t.Fatalf("seed %d O%d: compile: %v\n%s", seed, int(level), err, ir.Print(p.Module))
					}
					res, err := dialects.NewExecutor().Run(lowered, "main")
					if err != nil {
						t.Fatalf("seed %d O%d: execute: %v\n--- source ---\n%s\n--- lowered ---\n%s",
							seed, int(level), err, ir.Print(p.Module), ir.Print(lowered))
					}
					if res.Output != p.Expected {
						t.Fatalf("seed %d O%d: output %q, expected %q\n--- source ---\n%s",
							seed, int(level), res.Output, p.Expected, ir.Print(p.Module))
					}
				}
			}
		})
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	for _, preset := range gen.Presets() {
		a, err := gen.Generate(gen.Config{Preset: preset, Size: 30, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		b, err := gen.Generate(gen.Config{Preset: preset, Size: 30, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if ir.Print(a.Module) != ir.Print(b.Module) || a.Expected != b.Expected {
			t.Errorf("%s: same seed produced different programs", preset)
		}
		c, err := gen.Generate(gen.Config{Preset: preset, Size: 30, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		if ir.Print(a.Module) == ir.Print(c.Module) {
			t.Errorf("%s: different seeds produced identical programs", preset)
		}
	}
}

func TestGeneratedProgramsAlwaysPrint(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if p.Expected == "" {
			t.Errorf("seed %d: no expected output — unusable for differential testing", seed)
		}
	}
}

func TestGenerateRejectsUnknownPreset(t *testing.T) {
	if _, err := gen.Generate(gen.Config{Preset: "bogus"}); err == nil {
		t.Error("unknown preset should error")
	}
}

func TestGeneratedSizeScales(t *testing.T) {
	small, err := gen.Generate(gen.Config{Preset: "ariths", Size: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	large, err := gen.Generate(gen.Config{Preset: "ariths", Size: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if large.Module.NumOps() <= small.Module.NumOps() {
		t.Errorf("size 60 produced %d ops, size 5 produced %d", large.Module.NumOps(), small.Module.NumOps())
	}
}
