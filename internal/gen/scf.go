package gen

import (
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/scoped"
)

// genScfIf generates an scf.if with two region bodies. Both regions
// are generated under the semantic store (pushed Standard scopes), so
// operand choices inside them are concretely validated; only the taken
// region executes at run time, so the non-taken region cannot introduce
// dynamic UB, but it is still statically valid and plausible.
func genScfIf(g *generator) error {
	if g.depth >= 2 {
		// Keep region nesting bounded; generate a plain op instead.
		return genBinaryPure(g, "arith.addi")
	}
	cond, err := g.anyScalar(ir.I1)
	if err != nil {
		return err
	}
	// One or two results: multi-result scf.if exercises the multi-value
	// block-argument plumbing of the cf lowering.
	types := []ir.Type{g.randScalarType()}
	if g.r.Intn(3) == 0 {
		types = append(types, g.randScalarType())
	}

	thenRegion, err := g.genYieldRegion(types, "scf.yield")
	if err != nil {
		return err
	}
	elseRegion, err := g.genYieldRegion(types, "scf.yield")
	if err != nil {
		return err
	}

	op := ir.NewOp("scf.if")
	op.Operands = []ir.Value{cond}
	op.Regions = []*ir.Region{thenRegion, elseRegion}
	for _, t := range types {
		op.Results = append(op.Results, g.store.FreshValue(t))
	}
	return g.emit(op)
}

// genYieldRegion generates a small region body ending in a yield of one
// value per requested type. The body is generated against the live
// store in a pushed scope: extensions inside the region see (and are
// validated against) the enclosing concrete state, then the scope is
// popped and the region is evaluated as part of its parent operation.
func (g *generator) genYieldRegion(types []ir.Type, yieldOp string) (*ir.Region, error) {
	g.store.PushScope(scoped.Standard)
	g.depth++
	savedBlock := g.block
	body := &ir.Block{Label: "bb0"}
	g.block = body

	defer func() {
		g.block = savedBlock
		g.depth--
		g.store.PopScope()
	}()

	nOps := 1 + g.r.Intn(3)
	for i := 0; i < nOps; i++ {
		og := g.pickRegionOpGen()
		if err := og.gen(g); err != nil {
			return nil, err
		}
	}
	y := ir.NewOp(yieldOp)
	for _, t := range types {
		yv, err := g.anyScalar(t)
		if err != nil {
			return nil, err
		}
		y.Operands = append(y.Operands, yv)
	}
	body.Append(y)
	return &ir.Region{Blocks: []*ir.Block{body}}, nil
}

// regionSafePool lists fragment generators that are safe inside any
// region: they are either total (no UB for any input) or concretely
// validated against values visible at generation time.
func (g *generator) pickRegionOpGen() opGen {
	pool := []opGen{
		{"arith.constant", 3, genConstant},
		{"arith.addi", 2, func(g *generator) error { return genBinaryPure(g, "arith.addi") }},
		{"arith.muli", 2, func(g *generator) error { return genBinaryPure(g, "arith.muli") }},
		{"arith.xori", 1, func(g *generator) error { return genBinaryPure(g, "arith.xori") }},
		{"arith.cmpi", 2, genCmpi},
		{"arith.select", 2, genSelect},
		{"arith.ext/trunc", 1, genIntCast},
		{"arith.div/rem", 2, genDivRem},
	}
	total := 0
	for _, og := range pool {
		total += og.weight
	}
	n := g.r.Intn(total)
	for _, og := range pool {
		n -= og.weight
		if n < 0 {
			return og
		}
	}
	return pool[0]
}

// totalOpPool lists generators usable in bodies that run for *every*
// point of an iteration domain (tensor.generate, linalg.generic): only
// operations that are UB-free for all possible inputs, since the body's
// arguments differ per iteration and cannot be concretely pinned.
func (g *generator) genTotalOp() error {
	pool := []opGen{
		{"arith.constant", 2, genConstant},
		{"arith.addi", 2, func(g *generator) error { return genBinaryPure(g, "arith.addi") }},
		{"arith.subi", 1, func(g *generator) error { return genBinaryPure(g, "arith.subi") }},
		{"arith.muli", 2, func(g *generator) error { return genBinaryPure(g, "arith.muli") }},
		{"arith.andi", 1, func(g *generator) error { return genBinaryPure(g, "arith.andi") }},
		{"arith.ori", 1, func(g *generator) error { return genBinaryPure(g, "arith.ori") }},
		{"arith.xori", 1, func(g *generator) error { return genBinaryPure(g, "arith.xori") }},
		{"arith.minsi", 1, func(g *generator) error { return genBinaryPure(g, "arith.minsi") }},
		{"arith.maxsi", 1, func(g *generator) error { return genBinaryPure(g, "arith.maxsi") }},
		{"arith.cmpi", 2, genCmpi},
		{"arith.select", 2, genSelect},
		{"arith.ext/trunc", 1, genIntCast},
		{"arith.index_cast", 1, genIndexCast},
	}
	total := 0
	for _, og := range pool {
		total += og.weight
	}
	n := g.r.Intn(total)
	for _, og := range pool {
		n -= og.weight
		if n < 0 {
			return og.gen(g)
		}
	}
	return nil
}

// sampleFor produces a representative concrete value for a region
// argument of the given type, used to keep the store's concrete
// interpretation defined while generating iteration bodies.
func sampleFor(t ir.Type) rtval.Value {
	if _, isIdx := t.(ir.IndexType); isIdx {
		return rtval.NewIndex(0)
	}
	w, _ := ir.BitWidth(t)
	return rtval.NewInt(w, 1)
}
