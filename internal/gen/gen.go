// Package gen implements Ratte's semantics-guided program generators
// (paper §3.3): modular, composable fuzzers that construct MLIR
// programs incrementally, consulting the incremental semantic store
// after every extension so that the finished program is statically
// valid and dynamically free of undefined behaviour *by construction*.
//
// A generator is structured the way the paper prescribes: an
// operation-generator instantiates operands and attributes (querying
// the store for type information, fresh IDs, concrete values,
// well-definedness and concrete container shapes); region-holding
// operations call region-generators for their bodies; fragments —
// possibly several related operations — are appended to the partial
// program and evaluated in one step.
//
// Presets compose per-dialect operation generators into the
// whole-program fuzzers of the paper's Table 2: "ariths"
// ({arith, scf, func, vector}), "linalggeneric" ({linalg, arith, func,
// vector}) and "tensor" ({tensor, arith, func, vector}).
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"ratte/internal/coverage"
	"ratte/internal/dialects"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/scoped"
	"ratte/internal/semantics"
	"ratte/internal/telemetry"
)

// Coverage site families of the generator: what the fuzzer *chose*
// (one hit per weighted generator draw) and what it *emitted* (one hit
// per operation appended to the program). Together with the compiler
// and interpreter families they make up the semantic-coverage universe
// (docs/EXTENDING.md §9).
var (
	covGenPick = coverage.NewKeyed("gen/pick")
	covGenOp   = coverage.NewKeyed("gen/op")
)

// Config parameterises one program generation.
type Config struct {
	// Preset selects the dialect combination: "ariths",
	// "linalggeneric" or "tensor" (paper Table 2).
	Preset string
	// Size is the approximate number of generated fragments in @main
	// (the -n flag of the paper's mlir-quickcheck).
	Size int
	// Seed makes generation reproducible.
	Seed int64
	// MaxPrints caps the epilogue's output statements (0 = default 8).
	MaxPrints int
	// Metrics, when non-nil, receives generator telemetry: one count
	// per emitted operation, keyed by op and by dialect — the output-
	// coverage distribution the paper's evaluation reports. Counting
	// never influences generation; nil disables it entirely.
	Metrics *Metrics
	// Coverage, when non-nil, receives semantic-coverage hits: one per
	// weighted generator draw (gen/pick/<generator>) and one per
	// emitted operation (gen/op/<name>). Observation-only, like
	// Metrics; nil disables it with no residual cost.
	Coverage *coverage.Map
}

// cover records a coverage hit when coverage is enabled.
func (c *Config) cover(f *coverage.Keyed, key string) {
	if c != nil && c.Coverage != nil {
		c.Coverage.Hit(f.Site(key))
	}
}

// Metrics is the generator's telemetry bundle. Any field may be nil.
type Metrics struct {
	// Programs counts completed generations.
	Programs *telemetry.Counter
	// Ops counts emitted operations by full op name ("arith.addi").
	Ops *telemetry.CounterVec
	// Dialects counts emitted operations by dialect prefix ("arith").
	Dialects *telemetry.CounterVec
}

// NewMetrics builds generator metrics registered under the standard
// series names. A nil registry yields nil (telemetry disabled).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Programs: reg.Counter("ratte_gen_programs_total", "programs generated"),
		Ops:      reg.CounterVec("ratte_gen_ops_total", "op", "operations emitted by op name"),
		Dialects: reg.CounterVec("ratte_gen_dialect_ops_total", "dialect", "operations emitted by dialect"),
	}
}

// noteOp records one emitted operation.
func (m *Metrics) noteOp(name string) {
	if m == nil {
		return
	}
	m.Ops.Inc(name)
	if i := strings.IndexByte(name, '.'); i > 0 {
		m.Dialects.Inc(name[:i])
	}
}

// Program is a generated test case: the module plus the expected output
// the incremental interpretation computed during generation — the
// differential-testing oracle comes for free.
type Program struct {
	Module   *ir.Module
	Expected string
}

// Presets lists the paper's Table 2 generator presets. The additional
// "all" preset (every dialect combined) is accepted by Generate but not
// part of the paper's experiment grid.
func Presets() []string { return []string{"ariths", "linalggeneric", "tensor"} }

// AllPresets lists every accepted preset, including the combined one.
func AllPresets() []string { return append(Presets(), "all") }

// Generate builds one program. The returned program verifies against
// the source dialect rules, compiles, and its execution prints exactly
// Expected; any failure to do so is a bug in either the generator or
// the consumer and is reported as an error here only if generation
// itself becomes inconsistent (which the test suite asserts never
// happens).
func Generate(cfg Config) (*Program, error) {
	pool, err := poolFor(cfg.Preset)
	if err != nil {
		return nil, err
	}
	if cfg.Size <= 0 {
		cfg.Size = 20
	}
	if cfg.MaxPrints <= 0 {
		cfg.MaxPrints = 8
	}
	g := &generator{
		cfg:    cfg,
		r:      rand.New(rand.NewSource(cfg.Seed)),
		store:  semantics.NewStore(dialects.NewReferenceInterpreter()),
		module: ir.NewModule(),
		pool:   pool,
	}
	return g.run()
}

// opGen is one operation generator: a weighted fragment producer.
type opGen struct {
	name   string
	weight int
	gen    func(g *generator) error
}

type generator struct {
	cfg    Config
	r      *rand.Rand
	store  *semantics.Store
	module *ir.Module
	pool   []opGen

	block   *ir.Block // current insertion block
	helperN int
	depth   int // region-generation nesting depth
}

func (g *generator) run() (*Program, error) {
	mainFn := ir.NewOp("func.func")
	mainFn.Attrs.Set("sym_name", ir.StrAttr("main"))
	mainFn.Attrs.Set("function_type", ir.TypeAttrOf(ir.FuncOf(nil, nil)))
	mainFn.Regions = []*ir.Region{ir.NewRegion()}
	g.module.Body().Append(mainFn)
	g.block = mainFn.Regions[0].Entry()

	g.store.PushScope(scoped.IsolatedFromAbove)

	total := 0
	for i := 0; i < g.cfg.Size; i++ {
		og := g.pickOpGen()
		g.cfg.cover(covGenPick, og.name)
		if err := og.gen(g); err != nil {
			return nil, fmt.Errorf("gen: %s: %w", og.name, err)
		}
		total++
	}
	if err := g.epilogue(); err != nil {
		return nil, err
	}

	ret := ir.NewOp("func.return")
	g.block.Append(ret)
	g.store.PopScope()

	if g.cfg.Metrics != nil {
		g.cfg.Metrics.Programs.Inc()
	}
	return &Program{Module: g.module, Expected: g.store.Output()}, nil
}

// pickOpGen draws one operation generator by weight.
func (g *generator) pickOpGen() opGen {
	total := 0
	for _, og := range g.pool {
		total += og.weight
	}
	n := g.r.Intn(total)
	for _, og := range g.pool {
		n -= og.weight
		if n < 0 {
			return og
		}
	}
	return g.pool[len(g.pool)-1]
}

// emit appends an operation to the current block and folds it into the
// semantic store (generation step (3)+(6) of the paper's Figure 3).
func (g *generator) emit(op *ir.Operation) error {
	if err := g.store.Apply(op); err != nil {
		return fmt.Errorf("extension rejected by semantics: %w", err)
	}
	g.block.Append(op)
	g.cfg.Metrics.noteOp(op.Name)
	g.cfg.cover(covGenOp, op.Name)
	return nil
}

// scalarTypes is the integer/index domain the arith generators draw
// from. i1 is included deliberately: several production bugs (Figure 2)
// hide in 1-bit special cases.
var scalarTypes = []ir.Type{ir.I1, ir.I8, ir.I16, ir.I32, ir.I64, ir.Index}

func (g *generator) randScalarType() ir.Type {
	// Weight the common widths a little higher.
	weighted := []ir.Type{
		ir.I1, ir.I8, ir.I16,
		ir.I32, ir.I32,
		ir.I64, ir.I64, ir.I64,
		ir.Index, ir.Index,
	}
	return weighted[g.r.Intn(len(weighted))]
}

// interestingValue draws a constant biased toward boundary values —
// the Csmith/YARPGen lesson that bugs live at MIN/MAX/0/±1.
func (g *generator) interestingValue(t ir.Type) int64 {
	w, _ := ir.BitWidth(t)
	if _, isIdx := t.(ir.IndexType); isIdx {
		w = 64
	}
	switch g.r.Intn(8) {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return -1
	case 3:
		return rtval.MinSigned(w)
	case 4:
		return rtval.MaxSigned(w)
	case 5:
		return rtval.MinSigned(w) + 1
	default:
		// Small-ish random value.
		return int64(g.r.Intn(1<<10) - 1<<9)
	}
}

// rtOf materialises the runtime value of a constant.
func rtOf(v int64, t ir.Type) rtval.Int {
	if _, isIdx := t.(ir.IndexType); isIdx {
		return rtval.NewIndex(v)
	}
	w, _ := ir.BitWidth(t)
	return rtval.NewInt(w, v)
}

// freshConst emits an arith.constant of type t and value v.
func (g *generator) freshConst(t ir.Type, v int64) (ir.Value, error) {
	op := ir.NewOp("arith.constant")
	op.Attrs.Set("value", ir.IntAttr(rtOf(v, t).Signed(), t))
	res := g.store.FreshValue(t)
	op.Results = []ir.Value{res}
	return res, g.emit(op)
}

// scalarOperand returns a visible scalar of type t satisfying pred,
// creating a constant (directly, or behind an opaque helper call) when
// none exists or variety demands one. mkConst supplies a valid constant
// payload when a fresh value is needed.
func (g *generator) scalarOperand(t ir.Type, pred func(rtval.Int) bool, mkConst func() int64) (ir.Value, error) {
	cands := g.store.Candidates(func(v ir.Value, rt rtval.Value) bool {
		i, ok := rt.(rtval.Int)
		return ok && ir.TypeEqual(v.Type, t) && (pred == nil || pred(i))
	})
	// Prefer reuse, but keep injecting fresh values for diversity.
	if len(cands) > 0 && g.r.Intn(4) != 0 {
		return cands[g.r.Intn(len(cands))].Val, nil
	}
	v := mkConst()
	if g.r.Intn(3) == 0 && g.depth == 0 {
		// Route the constant through an opaque helper function so
		// optimisations cannot fold it (the paper's Figure 2/12 shape).
		vals, err := g.helperCall([]ir.Type{t}, []int64{v})
		if err != nil {
			return ir.Value{}, err
		}
		return vals[0], nil
	}
	return g.freshConst(t, v)
}

// anyScalar returns a defined visible scalar of type t (creating one if
// needed).
func (g *generator) anyScalar(t ir.Type) (ir.Value, error) {
	return g.scalarOperand(t, func(i rtval.Int) bool { return i.Defined() },
		func() int64 { return g.interestingValue(t) })
}

// helperCall creates a fresh helper function returning the given
// constants and emits a call to it, returning the call results. Helper
// bodies are opaque to the (intraprocedural) optimiser, which keeps
// runtime behaviour live through every pipeline.
func (g *generator) helperCall(types []ir.Type, vals []int64) ([]ir.Value, error) {
	name := fmt.Sprintf("helper%d", g.helperN)
	g.helperN++

	f := ir.NewOp("func.func")
	f.Attrs.Set("sym_name", ir.StrAttr(name))
	f.Attrs.Set("function_type", ir.TypeAttrOf(ir.FuncOf(nil, types)))
	body := &ir.Block{Label: "bb0"}
	f.Regions = []*ir.Region{{Blocks: []*ir.Block{body}}}
	ret := ir.NewOp("func.return")
	for i, t := range types {
		c := ir.NewOp("arith.constant")
		c.Attrs.Set("value", ir.IntAttr(rtOf(vals[i], t).Signed(), t))
		res := ir.V(fmt.Sprintf("c%d", i), t)
		c.Results = []ir.Value{res}
		body.Append(c)
		ret.Operands = append(ret.Operands, res)
	}
	body.Append(ret)
	g.module.Body().Append(f)
	if err := g.store.AddFunc(f); err != nil {
		return nil, err
	}

	call := ir.NewOp("func.call")
	call.Attrs.Set("callee", ir.SymbolAttr(name))
	results := make([]ir.Value, len(types))
	for i, t := range types {
		results[i] = g.store.FreshValue(t)
	}
	call.Results = results
	if err := g.emit(call); err != nil {
		return nil, err
	}
	return results, nil
}

// indexConst emits an index constant.
func (g *generator) indexConst(v int64) (ir.Value, error) {
	return g.freshConst(ir.Index, v)
}

// genComputedHelperCall creates a helper function WITH parameters whose
// body computes with total operations only (safe for any arguments),
// then calls it on visible values. This exercises argument passing,
// isolated scopes and cross-function optimisation boundaries.
func genComputedHelperCall(g *generator) error {
	if g.depth > 0 {
		return genConstant(g)
	}
	nArgs := 1 + g.r.Intn(2)
	argTypes := make([]ir.Type, nArgs)
	args := make([]ir.Value, nArgs)
	argRTs := make([]rtval.Value, nArgs)
	for i := range argTypes {
		argTypes[i] = g.randScalarType()
		a, err := g.anyScalar(argTypes[i])
		if err != nil {
			return err
		}
		args[i] = a
		rt, ok := g.store.Value(a.ID)
		if !ok {
			return fmt.Errorf("argument %%%s has no concrete value", a.ID)
		}
		argRTs[i] = rt
	}

	name := fmt.Sprintf("helper%d", g.helperN)
	g.helperN++

	// Generate the body against the live store in an isolated scope,
	// with the parameters bound to their concrete call-site values (the
	// helper is called exactly once, so the concrete interpretation is
	// exact, not a sample).
	g.store.PushScope(scoped.IsolatedFromAbove)
	g.depth++
	savedBlock := g.block
	body := &ir.Block{Label: "bb0"}
	g.block = body

	var genErr error
	params := make([]ir.Value, nArgs)
	for i, t := range argTypes {
		params[i] = ir.V(fmt.Sprintf("arg%d", i), t)
		if err := g.store.BindArg(params[i], argRTs[i]); err != nil {
			genErr = err
			break
		}
	}
	body.Args = params

	nOps := 1 + g.r.Intn(3)
	for i := 0; i < nOps && genErr == nil; i++ {
		genErr = g.genTotalOp()
	}
	var retType ir.Type
	var retVal ir.Value
	if genErr == nil {
		retType = g.randScalarType()
		retVal, genErr = g.anyScalar(retType)
	}
	g.block = savedBlock
	g.depth--
	g.store.PopScope()
	if genErr != nil {
		return genErr
	}

	ret := ir.NewOp("func.return")
	ret.Operands = []ir.Value{retVal}
	body.Append(ret)

	f := ir.NewOp("func.func")
	f.Attrs.Set("sym_name", ir.StrAttr(name))
	f.Attrs.Set("function_type", ir.TypeAttrOf(ir.FuncOf(argTypes, []ir.Type{retType})))
	f.Regions = []*ir.Region{{Blocks: []*ir.Block{body}}}
	g.module.Body().Append(f)
	if err := g.store.AddFunc(f); err != nil {
		return err
	}

	call := ir.NewOp("func.call")
	call.Attrs.Set("callee", ir.SymbolAttr(name))
	call.Operands = args
	call.Results = []ir.Value{g.store.FreshValue(retType)}
	return g.emit(call)
}
