package gen

import (
	"ratte/internal/ir"
	"ratte/internal/rtval"
)

// arithOpGens returns the operation generators of the arith dialect.
// Each generator mirrors the paper's Figure 11 discipline: it asks the
// store for typing information and fresh IDs, and consults the concrete
// interpretation to rule out operand choices that would introduce
// undefined behaviour.
func arithOpGens() []opGen {
	gens := []opGen{
		{"arith.constant", 6, genConstant},
		{"func.call(helper)", 4, genHelperCall},
		{"func.call(computed)", 2, genComputedHelperCall},
		{"arith.cmpi", 4, genCmpi},
		{"arith.select", 3, genSelect},
		{"arith.ext/trunc", 4, genIntCast},
		{"arith.index_cast", 3, genIndexCast},
		{"arith.extended", 3, genExtended},
		{"arith.div/rem", 6, genDivRem},
		{"arith.div(guarded)", 3, genGuardedDiv},
		{"arith.shift", 3, genShift},
	}
	for _, name := range []string{
		"arith.addi", "arith.subi", "arith.muli",
		"arith.andi", "arith.ori", "arith.xori",
		"arith.maxsi", "arith.maxui", "arith.minsi", "arith.minui",
	} {
		name := name
		gens = append(gens, opGen{name, 2, func(g *generator) error {
			return genBinaryPure(g, name)
		}})
	}
	return gens
}

func genConstant(g *generator) error {
	t := g.randScalarType()
	_, err := g.freshConst(t, g.interestingValue(t))
	return err
}

func genHelperCall(g *generator) error {
	n := 1 + g.r.Intn(3)
	types := make([]ir.Type, n)
	vals := make([]int64, n)
	for i := range types {
		types[i] = g.randScalarType()
		vals[i] = g.interestingValue(types[i])
	}
	_, err := g.helperCall(types, vals)
	return err
}

func genBinaryPure(g *generator, name string) error {
	t := g.randScalarType()
	a, err := g.anyScalar(t)
	if err != nil {
		return err
	}
	b, err := g.anyScalar(t)
	if err != nil {
		return err
	}
	op := ir.NewOp(name)
	op.Operands = []ir.Value{a, b}
	op.Results = []ir.Value{g.store.FreshValue(t)}
	return g.emit(op)
}

// genDivRem generates one of the division-family operations with a
// concretely-validated divisor: never zero, and never the MIN/-1
// signed-overflow pair (the exact constraints of Figure 11).
func genDivRem(g *generator) error {
	names := []string{
		"arith.divsi", "arith.divui", "arith.remsi", "arith.remui",
		"arith.ceildivsi", "arith.ceildivui", "arith.floordivsi",
	}
	name := names[g.r.Intn(len(names))]
	t := g.randScalarType()
	w, _ := ir.BitWidth(t)

	signed := name == "arith.divsi" || name == "arith.remsi" ||
		name == "arith.ceildivsi" || name == "arith.floordivsi"

	// Divisor: defined and non-zero, with -1 over-represented — the
	// boundary divisor behind several production defects.
	b, err := g.scalarOperand(t,
		func(i rtval.Int) bool { return i.Defined() && !i.IsZero() },
		func() int64 {
			if g.r.Intn(3) == 0 {
				return -1
			}
			for {
				v := g.interestingValue(t)
				if rtOf(v, t).IsZero() {
					continue
				}
				return v
			}
		})
	if err != nil {
		return err
	}
	bRT, _ := g.store.Value(b.ID)
	bIsMinusOne := bRT.(rtval.Int).Signed() == -1

	// Dividend: when the divisor is -1 and the op is signed, MIN would
	// overflow; exclude it. MIN and MIN+1 are over-represented — signed
	// division boundaries are where lowerings go wrong (Figure 12).
	a, err := g.scalarOperand(t,
		func(i rtval.Int) bool {
			if !i.Defined() {
				return false
			}
			if signed && bIsMinusOne && i.Signed() == rtval.MinSigned(w) {
				return false
			}
			return true
		},
		func() int64 {
			if n := g.r.Intn(4); n < 2 {
				v := rtval.MinSigned(w) + int64(n) // MIN or MIN+1
				if !(signed && bIsMinusOne && v == rtval.MinSigned(w)) {
					return v
				}
			}
			for {
				v := g.interestingValue(t)
				if signed && bIsMinusOne && rtOf(v, t).Signed() == rtval.MinSigned(w) {
					continue
				}
				return v
			}
		})
	if err != nil {
		return err
	}

	op := ir.NewOp(name)
	op.Operands = []ir.Value{a, b}
	op.Results = []ir.Value{g.store.FreshValue(t)}
	return g.emit(op)
}

// genGuardedDiv emits the paper's flagship IR-fragment example (§3.3):
// a division together with the runtime guard that makes it safe. The
// divisor may be ANY visible value — including zero or -1 — because the
// fragment rewrites it first:
//
//	%isz  = cmpi eq %d, 0
//	%safe = select %isz, 1, %d        // never zero
//	%q    = divsi %a, %safe
//
// For signed ops the dividend is kept clear of MIN so the -1 divisor
// cannot overflow. This exercises divisions whose operands no
// optimisation can prove constant — the hardest path through the
// division lowerings.
func genGuardedDiv(g *generator) error {
	names := []string{"arith.divsi", "arith.divui", "arith.remsi", "arith.remui"}
	name := names[g.r.Intn(len(names))]
	t := g.randScalarType()
	w, _ := ir.BitWidth(t)
	signed := name == "arith.divsi" || name == "arith.remsi"

	d, err := g.scalarOperand(t,
		func(i rtval.Int) bool { return i.Defined() },
		func() int64 { return g.interestingValue(t) })
	if err != nil {
		return err
	}
	zero, err := g.freshConst(t, 0)
	if err != nil {
		return err
	}
	one, err := g.freshConst(t, 1)
	if err != nil {
		return err
	}
	isz := ir.NewOp("arith.cmpi")
	isz.Operands = []ir.Value{d, zero}
	isz.Attrs.Set("predicate", ir.IntAttr(0, ir.I64)) // eq
	isz.Results = []ir.Value{g.store.FreshValue(ir.I1)}
	if err := g.emit(isz); err != nil {
		return err
	}
	safe := ir.NewOp("arith.select")
	safe.Operands = []ir.Value{isz.Results[0], one, d}
	safe.Results = []ir.Value{g.store.FreshValue(t)}
	if err := g.emit(safe); err != nil {
		return err
	}

	a, err := g.scalarOperand(t,
		func(i rtval.Int) bool {
			return i.Defined() && (!signed || i.Signed() != rtval.MinSigned(w))
		},
		func() int64 {
			for {
				v := g.interestingValue(t)
				if signed && rtOf(v, t).Signed() == rtval.MinSigned(w) {
					continue
				}
				return v
			}
		})
	if err != nil {
		return err
	}

	op := ir.NewOp(name)
	op.Operands = []ir.Value{a, safe.Results[0]}
	op.Results = []ir.Value{g.store.FreshValue(t)}
	return g.emit(op)
}

// genShift generates a shift whose amount is concretely below the bit
// width.
func genShift(g *generator) error {
	names := []string{"arith.shli", "arith.shrsi", "arith.shrui"}
	name := names[g.r.Intn(len(names))]
	t := g.randScalarType()
	w, _ := ir.BitWidth(t)

	amount, err := g.scalarOperand(t,
		func(i rtval.Int) bool { return i.Defined() && i.Unsigned() < uint64(w) },
		func() int64 { return int64(g.r.Intn(int(w))) })
	if err != nil {
		return err
	}
	a, err := g.anyScalar(t)
	if err != nil {
		return err
	}
	op := ir.NewOp(name)
	op.Operands = []ir.Value{a, amount}
	op.Results = []ir.Value{g.store.FreshValue(t)}
	return g.emit(op)
}

func genCmpi(g *generator) error {
	t := g.randScalarType()
	a, err := g.anyScalar(t)
	if err != nil {
		return err
	}
	b, err := g.anyScalar(t)
	if err != nil {
		return err
	}
	op := ir.NewOp("arith.cmpi")
	op.Operands = []ir.Value{a, b}
	op.Attrs.Set("predicate", ir.IntAttr(int64(g.r.Intn(10)), ir.I64))
	op.Results = []ir.Value{g.store.FreshValue(ir.I1)}
	return g.emit(op)
}

func genSelect(g *generator) error {
	cond, err := g.anyScalar(ir.I1)
	if err != nil {
		return err
	}
	t := g.randScalarType()
	a, err := g.anyScalar(t)
	if err != nil {
		return err
	}
	b, err := g.anyScalar(t)
	if err != nil {
		return err
	}
	op := ir.NewOp("arith.select")
	op.Operands = []ir.Value{cond, a, b}
	op.Results = []ir.Value{g.store.FreshValue(t)}
	return g.emit(op)
}

// genIntCast generates extsi/extui/trunci with width constraints
// satisfied by construction.
func genIntCast(g *generator) error {
	widths := []uint{1, 8, 16, 32, 64}
	wi := g.r.Intn(len(widths))
	wj := g.r.Intn(len(widths))
	if wi == wj {
		wj = (wj + 1) % len(widths)
	}
	from, to := widths[wi], widths[wj]
	var name string
	if from < to {
		if g.r.Intn(2) == 0 {
			name = "arith.extsi"
		} else {
			name = "arith.extui"
		}
	} else {
		name = "arith.trunci"
	}
	a, err := g.anyScalar(ir.I(from))
	if err != nil {
		return err
	}
	op := ir.NewOp(name)
	op.Operands = []ir.Value{a}
	op.Results = []ir.Value{g.store.FreshValue(ir.I(to))}
	return g.emit(op)
}

// genIndexCast converts between index and a random integer width —
// chains of these are what exposed production bugs 1 and 2. A third of
// the time it emits a round-trip *fragment* (index -> iN -> index), the
// multi-op extension shape of the paper's §3.3 that exercises the
// chain-fold canonicalizations.
func genIndexCast(g *generator) error {
	widths := []uint{1, 8, 16, 32, 64}
	w := widths[g.r.Intn(len(widths))]

	if g.r.Intn(3) == 0 {
		// Round-trip fragment: %n = index_cast %idx : index -> iN;
		// %back = index_cast %n : iN -> index. Route the source through
		// an opaque helper half the time so constant folding cannot
		// erase the chain before the chain-fold pattern sees it.
		var idx ir.Value
		if g.depth == 0 && g.r.Intn(2) == 0 {
			vals, err := g.helperCall([]ir.Type{ir.Index}, []int64{g.interestingValue(ir.Index)})
			if err != nil {
				return err
			}
			idx = vals[0]
		} else {
			v, err := g.anyScalar(ir.Index)
			if err != nil {
				return err
			}
			idx = v
		}
		down := ir.NewOp("arith.index_cast")
		down.Operands = []ir.Value{idx}
		down.Results = []ir.Value{g.store.FreshValue(ir.I(w))}
		if err := g.emit(down); err != nil {
			return err
		}
		up := ir.NewOp("arith.index_cast")
		up.Operands = []ir.Value{down.Results[0]}
		up.Results = []ir.Value{g.store.FreshValue(ir.Index)}
		return g.emit(up)
	}

	name := "arith.index_cast"
	if g.r.Intn(2) == 0 {
		name = "arith.index_castui"
	}
	var from, to ir.Type
	if g.r.Intn(2) == 0 {
		from, to = ir.I(w), ir.Index
	} else {
		from, to = ir.Index, ir.I(w)
	}
	a, err := g.anyScalar(from)
	if err != nil {
		return err
	}
	op := ir.NewOp(name)
	op.Operands = []ir.Value{a}
	op.Results = []ir.Value{g.store.FreshValue(to)}
	return g.emit(op)
}

// genExtended generates the extended-arithmetic ops (two results).
func genExtended(g *generator) error {
	names := []string{"arith.addui_extended", "arith.mulsi_extended", "arith.mului_extended"}
	name := names[g.r.Intn(len(names))]
	t := g.randScalarType()
	a, err := g.anyScalar(t)
	if err != nil {
		return err
	}
	b, err := g.anyScalar(t)
	if err != nil {
		return err
	}
	op := ir.NewOp(name)
	op.Operands = []ir.Value{a, b}
	if name == "arith.addui_extended" {
		op.Results = []ir.Value{g.store.FreshValue(t), g.store.FreshValue(ir.I1)}
	} else {
		op.Results = []ir.Value{g.store.FreshValue(t), g.store.FreshValue(t)}
	}
	return g.emit(op)
}
