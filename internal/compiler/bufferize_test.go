package compiler_test

import (
	"testing"

	"ratte/internal/compiler"
	"ratte/internal/ir"
)

// TestBufferizeInsertShape pins the value-semantics-preserving shape of
// the tensor.insert bufferisation: a fresh alloc, a full copy of the
// source buffer, then the store — never an in-place write.
func TestBufferizeInsertShape(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %c = "arith.constant"() {value = dense<[1, 2]> : tensor<2xi64>} : () -> (tensor<2xi64>)
    %i0 = "arith.constant"() {value = 0 : index} : () -> (index)
    %v = "arith.constant"() {value = 9 : i64} : () -> (i64)
    %t2 = "tensor.insert"(%v, %c, %i0) : (i64, tensor<2xi64>, index) -> (tensor<2xi64>)
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m := mustParse(t, src)
	pipe, _ := compiler.NewPipeline("one-shot-bufferize")
	if err := pipe.Run(m, &compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	counts := opCounts(m)
	// The dense constant becomes one alloc + 2 stores; the insert adds
	// one alloc + one copy + one store.
	if counts["memref.alloc"] != 2 {
		t.Errorf("allocs = %d, want 2:\n%s", counts["memref.alloc"], ir.Print(m))
	}
	if counts["memref.copy"] != 1 {
		t.Errorf("copies = %d, want 1 (value semantics!)", counts["memref.copy"])
	}
	if counts["memref.store"] != 3 {
		t.Errorf("stores = %d, want 3", counts["memref.store"])
	}
	if counts["tensor.insert"] != 0 {
		t.Error("tensor.insert survived bufferisation")
	}
	// No tensor types may remain anywhere.
	m.Walk(func(op *ir.Operation) bool {
		for _, v := range append(op.Operands, op.Results...) {
			if _, isTensor := v.Type.(ir.TensorType); isTensor {
				t.Errorf("tensor-typed value %%%s survived bufferisation", v.ID)
			}
		}
		return true
	})
}

// TestBufferizeFunctionBoundary: signatures and call sites change
// tensor to memref consistently.
func TestBufferizeFunctionBoundary(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %t = "arith.constant"() {value = dense<[4]> : tensor<1xi64>} : () -> (tensor<1xi64>)
    %r = "func.call"(%t) {callee = @id} : (tensor<1xi64>) -> (tensor<1xi64>)
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
  ^bb0(%x: tensor<1xi64>):
    "func.return"(%x) : (tensor<1xi64>) -> ()
  }) {sym_name = "id", function_type = (tensor<1xi64>) -> (tensor<1xi64>)} : () -> ()
}) : () -> ()`
	m := mustParse(t, src)
	pipe, _ := compiler.NewPipeline("one-shot-bufferize")
	if err := pipe.Run(m, &compiler.Options{VerifyBetweenPasses: true}); err != nil {
		t.Fatal(err)
	}
	ft, err := ir.FuncType(m.Func("id"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ft.Inputs[0].(ir.MemRefType); !ok {
		t.Errorf("callee input not bufferised: %s", ft)
	}
	if _, ok := ft.Results[0].(ir.MemRefType); !ok {
		t.Errorf("callee result not bufferised: %s", ft)
	}
}

// TestBufferizeRejectsTensorPrint: printing a whole tensor has no
// lowering; the pass reports it rather than miscompiling.
func TestBufferizeRejectsTensorPrint(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %t = "arith.constant"() {value = dense<[4]> : tensor<1xi64>} : () -> (tensor<1xi64>)
    "vector.print"(%t) : (tensor<1xi64>) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m := mustParse(t, src)
	pipe, _ := compiler.NewPipeline("one-shot-bufferize")
	if err := pipe.Run(m, &compiler.Options{}); err == nil {
		t.Error("tensor-typed vector.print must be a pipeline error")
	}
}
