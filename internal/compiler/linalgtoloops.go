package compiler

import (
	"fmt"

	"ratte/internal/dialects/linalg"
	"ratte/internal/ir"
)

// runLinalgToLoops lowers the buffer-form linalg operations (and the
// bufferised tensor.generate marker) into scf.for loop nests with
// memref.load/memref.store, mirroring convert-linalg-to-loops. This is
// how Ratte exercises loop lowerings without generating loops directly
// (the paper's §1 note: higher-level operations are lowered *into*
// loops).
func runLinalgToLoops(m *ir.Module, opts *Options) error {
	for _, f := range funcsOf(m) {
		nm := newNamer(f)
		err := forEachBlock(f, func(b *ir.Block) error {
			var out []*ir.Operation
			for _, op := range b.Ops {
				switch op.Name {
				case "linalg.generic":
					opts.cover(covLinalgLoops, op.Name)
					ops, err := lowerGenericToLoops(nm, op)
					if err != nil {
						return err
					}
					out = append(out, ops...)
				case "linalg.fill":
					opts.cover(covLinalgLoops, op.Name)
					ops, err := lowerFillToLoops(nm, op)
					if err != nil {
						return err
					}
					out = append(out, ops...)
				case "ratte.generate_into":
					opts.cover(covLinalgLoops, op.Name)
					ops, err := lowerGenerateToLoops(nm, op)
					if err != nil {
						return err
					}
					out = append(out, ops...)
				default:
					out = append(out, op)
				}
			}
			b.Ops = out
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// loopNest builds nDims nested scf.for loops from 0 to the given extent
// values with step 1, returning the top-level ops and the innermost
// body block plus the induction variables (outermost first).
func loopNest(nm *namer, extents []ir.Value) (top []*ir.Operation, innermost *ir.Block, ivs []ir.Value) {
	zeroOp, zero := buildConst(nm, 0, ir.Index)
	oneOp, one := buildConst(nm, 1, ir.Index)
	top = []*ir.Operation{zeroOp, oneOp}

	appendTo := &top
	for _, ub := range extents {
		iv := nm.Value(ir.Index)
		ivs = append(ivs, iv)
		loop := ir.NewOp("scf.for")
		loop.Operands = []ir.Value{zero, ub, one}
		body := &ir.Block{Label: "bb0", Args: []ir.Value{iv}}
		loop.Regions = []*ir.Region{{Blocks: []*ir.Block{body}}}
		*appendTo = append(*appendTo, loop)
		innermost = body
		appendTo = &body.Ops
	}
	if innermost == nil {
		// Rank-0 nest: a single body executed once; model with a
		// one-iteration loop for uniformity.
		iv := nm.Value(ir.Index)
		ivs = nil
		loop := ir.NewOp("scf.for")
		loop.Operands = []ir.Value{zero, one, one}
		body := &ir.Block{Label: "bb0", Args: []ir.Value{iv}}
		loop.Regions = []*ir.Region{{Blocks: []*ir.Block{body}}}
		top = append(top, loop)
		innermost = body
	}
	return top, innermost, ivs
}

// closeNest appends the scf.yield terminators to every loop body of a
// nest built by loopNest.
func closeNest(top []*ir.Operation) {
	for _, op := range top {
		if op.Name != "scf.for" {
			continue
		}
		closeLoop(op)
	}
}

func closeLoop(loop *ir.Operation) {
	body := loop.Regions[0].Entry()
	for _, inner := range body.Ops {
		if inner.Name == "scf.for" {
			closeLoop(inner)
		}
	}
	body.Append(ir.NewOp("scf.yield"))
}

// dimExtents emits memref.dim ops for every dimension of a memref value
// (static dims included — memref.dim resolves them at runtime; the
// production lowering folds the static ones, ours leaves that to
// canonicalize).
func dimExtents(nm *namer, src ir.Value, out *[]*ir.Operation) []ir.Value {
	mt := src.Type.(ir.MemRefType)
	extents := make([]ir.Value, mt.Rank())
	for i := range extents {
		cop, cv := buildConst(nm, int64(i), ir.Index)
		dop, dv := buildOp1(nm, "memref.dim", ir.Index, src, cv)
		*out = append(*out, cop, dop)
		extents[i] = dv
	}
	return extents
}

func lowerGenericToLoops(nm *namer, op *ir.Operation) ([]*ir.Operation, error) {
	nIns, nOuts, err := linalg.SegmentSizes(op)
	if err != nil {
		return nil, err
	}
	maps, err := linalg.IndexingMaps(op)
	if err != nil {
		return nil, err
	}
	its, err := linalg.IteratorTypes(op)
	if err != nil {
		return nil, err
	}
	nDims := len(its)

	var prologue []*ir.Operation

	// Derive each domain dim's extent from the first operand whose map
	// covers it.
	extents := make([]ir.Value, nDims)
	for d := 0; d < nDims; d++ {
		found := false
		for i, m := range maps {
			for j, dim := range m.Results {
				if dim != d {
					continue
				}
				cop, cv := buildConst(nm, int64(j), ir.Index)
				dop, dv := buildOp1(nm, "memref.dim", ir.Index, op.Operands[i], cv)
				prologue = append(prologue, cop, dop)
				extents[d] = dv
				found = true
				break
			}
			if found {
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("linalg.generic: dim d%d not covered by any map", d)
		}
	}

	nest, body, ivs := loopNest(nm, extents)

	// Gather region block-argument substitutions: loads of ins and outs.
	entry := op.Regions[0].Entry()
	if entry == nil || len(entry.Args) != nIns+nOuts {
		return nil, fmt.Errorf("linalg.generic region must take %d arguments", nIns+nOuts)
	}
	mappedIdx := func(m ir.AffineMapAttr) []ir.Value {
		idx := make([]ir.Value, len(m.Results))
		for j, d := range m.Results {
			idx[j] = ivs[d]
		}
		return idx
	}
	subst := map[string]ir.Value{}
	for i := 0; i < nIns+nOuts; i++ {
		loadOp, loaded := buildOp1(nm, "memref.load", entry.Args[i].Type,
			append([]ir.Value{op.Operands[i]}, mappedIdx(maps[i])...)...)
		body.Append(loadOp)
		subst[entry.Args[i].ID] = loaded
	}

	// Inline the region body with substituted arguments; linalg.yield
	// becomes stores into the out buffers.
	bodyOps := entry.Ops
	term := bodyOps[len(bodyOps)-1]
	if term.Name != "linalg.yield" {
		return nil, fmt.Errorf("linalg.generic region must end in linalg.yield")
	}
	inlined := make([]*ir.Operation, 0, len(bodyOps)-1)
	for _, o := range bodyOps[:len(bodyOps)-1] {
		inlined = append(inlined, o.Clone())
	}
	renameUses(inlined, subst)
	body.Append(inlined...)

	yields := append([]ir.Value(nil), term.Operands...)
	renameValues(yields, subst)
	for k := 0; k < nOuts; k++ {
		st := ir.NewOp("memref.store")
		st.Operands = append([]ir.Value{yields[k], op.Operands[nIns+k]}, mappedIdx(maps[nIns+k])...)
		body.Append(st)
	}

	closeNest(nest)
	return append(prologue, nest...), nil
}

func lowerFillToLoops(nm *namer, op *ir.Operation) ([]*ir.Operation, error) {
	dest := op.Operands[1]
	if _, ok := dest.Type.(ir.MemRefType); !ok {
		return nil, fmt.Errorf("linalg.fill survived bufferization in tensor form")
	}
	var prologue []*ir.Operation
	extents := dimExtents(nm, dest, &prologue)
	nest, body, ivs := loopNest(nm, extents)
	st := ir.NewOp("memref.store")
	st.Operands = append([]ir.Value{op.Operands[0], dest}, ivs...)
	body.Append(st)
	closeNest(nest)
	return append(prologue, nest...), nil
}

func lowerGenerateToLoops(nm *namer, op *ir.Operation) ([]*ir.Operation, error) {
	dest := op.Operands[0]
	var prologue []*ir.Operation
	extents := dimExtents(nm, dest, &prologue)
	nest, body, ivs := loopNest(nm, extents)

	entry := op.Regions[0].Entry()
	if entry == nil || len(entry.Args) != len(ivs) {
		return nil, fmt.Errorf("tensor.generate region must take %d index arguments", len(ivs))
	}
	subst := map[string]ir.Value{}
	for i, a := range entry.Args {
		subst[a.ID] = ivs[i]
	}
	bodyOps := entry.Ops
	term := bodyOps[len(bodyOps)-1]
	if term.Name != "tensor.yield" {
		return nil, fmt.Errorf("tensor.generate region must end in tensor.yield")
	}
	inlined := make([]*ir.Operation, 0, len(bodyOps)-1)
	for _, o := range bodyOps[:len(bodyOps)-1] {
		inlined = append(inlined, o.Clone())
	}
	renameUses(inlined, subst)
	body.Append(inlined...)

	yields := append([]ir.Value(nil), term.Operands...)
	renameValues(yields, subst)
	st := ir.NewOp("memref.store")
	st.Operands = append([]ir.Value{yields[0], dest}, ivs...)
	body.Append(st)

	closeNest(nest)
	return append(prologue, nest...), nil
}

// renameValues applies a substitution to a value slice in place.
func renameValues(vals []ir.Value, subst map[string]ir.Value) {
	for i, v := range vals {
		if r, ok := subst[v.ID]; ok {
			vals[i] = r
		}
	}
}
