package compiler_test

import (
	"testing"

	"ratte/internal/compiler"
	"ratte/internal/conformance"
	"ratte/internal/dialects"
	"ratte/internal/gen"
	"ratte/internal/ir"
)

// TestPassPrefixesPreserveSemantics is the strongest pass-correctness
// property the substrate offers: for generated (UB-free) programs, the
// module after EVERY executable prefix of the pipeline — a
// mixed-dialect module mid-lowering — still executes to the reference
// output. A pass that corrupts semantics anywhere in the pipeline fails
// here with the exact prefix identified, auto-shrunk by the conformance
// harness to a minimal trigger.
//
// Where the pre-harness version of this test covered ariths at O2 only,
// the conformance oracle family covers every preset × optimisation
// level, plus the alternative (no arith-expand) lowering strategy.
func TestPassPrefixesPreserveSemantics(t *testing.T) {
	var oracles []conformance.Oracle
	for _, preset := range gen.AllPresets() {
		for _, level := range compiler.OptLevels {
			oracles = append(oracles, conformance.NewPrefixEquivalence(preset, level, false))
		}
	}
	// The second lowering strategy (direct convert-arith-to-llvm
	// division patterns, no arith-expand) for the scalar preset.
	for _, level := range compiler.OptLevels {
		oracles = append(oracles, conformance.NewPrefixEquivalence("ariths", level, true))
	}
	for _, o := range oracles {
		o := o
		t.Run(o.Name(), func(t *testing.T) {
			res, err := conformance.Run(o, conformance.Config{Trials: 6, Seed: 200})
			if err != nil {
				t.Fatal(err)
			}
			for _, ce := range res.Failures {
				t.Errorf("seed %d (shrunk %d -> %d ops): %s\n%s",
					ce.Seed, ce.OrigOps, ce.MinOps, ce.Detail, ir.Print(ce.Module))
			}
		})
	}
}

// TestCanonicalizeIdempotent: a second canonicalize run must be a
// no-op (the fixpoint property of the greedy rewriter).
func TestCanonicalizeIdempotent(t *testing.T) {
	for seed := int64(300); seed < 312; seed++ {
		p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		pipe, _ := compiler.NewPipeline("canonicalize")
		m := p.Module.Clone()
		if err := pipe.Run(m, &compiler.Options{}); err != nil {
			t.Fatal(err)
		}
		once := ir.Print(m)
		if err := pipe.Run(m, &compiler.Options{}); err != nil {
			t.Fatal(err)
		}
		if twice := ir.Print(m); twice != once {
			t.Fatalf("seed %d: canonicalize not idempotent:\n--- once ---\n%s\n--- twice ---\n%s",
				seed, once, twice)
		}
	}
}

// TestCSEIdempotent: likewise for CSE.
func TestCSEIdempotent(t *testing.T) {
	for seed := int64(400); seed < 410; seed++ {
		p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		pipe, _ := compiler.NewPipeline("cse")
		m := p.Module.Clone()
		if err := pipe.Run(m, &compiler.Options{}); err != nil {
			t.Fatal(err)
		}
		once := ir.Print(m)
		if err := pipe.Run(m, &compiler.Options{}); err != nil {
			t.Fatal(err)
		}
		if twice := ir.Print(m); twice != once {
			t.Fatalf("seed %d: cse not idempotent", seed)
		}
	}
}

// TestOptimisationShrinksOrPreserves: canonicalize+cse never grow a
// generated module (they fold, dedup and DCE).
func TestOptimisationShrinksOrPreserves(t *testing.T) {
	for seed := int64(500); seed < 515; seed++ {
		p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 30, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		before := p.Module.NumOps()
		pipe, _ := compiler.NewPipeline("canonicalize", "cse", "canonicalize")
		m := p.Module.Clone()
		if err := pipe.Run(m, &compiler.Options{}); err != nil {
			t.Fatal(err)
		}
		if after := m.NumOps(); after > before {
			t.Errorf("seed %d: optimisation grew module %d -> %d", seed, before, after)
		}
	}
}

// TestLoweredTensorPipelineMilestones: the tensor/linalg pipelines are
// checked at their executable milestones (source, post-loops, fully
// lowered); the bufferised-but-not-yet-looped state is internal-only.
func TestLoweredTensorPipelineMilestones(t *testing.T) {
	for _, preset := range []string{"tensor", "linalggeneric"} {
		names, err := compiler.PipelineFor(preset, compiler.O1)
		if err != nil {
			t.Fatal(err)
		}
		// Find the index just after convert-linalg-to-loops.
		loopsAt := -1
		for i, n := range names {
			if n == "convert-linalg-to-loops" {
				loopsAt = i + 1
			}
		}
		if loopsAt < 0 {
			t.Fatalf("%s pipeline misses convert-linalg-to-loops: %v", preset, names)
		}
		for seed := int64(600); seed < 606; seed++ {
			p, err := gen.Generate(gen.Config{Preset: preset, Size: 20, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			for _, prefix := range [][]string{names[:loopsAt], names} {
				pipe, err := compiler.NewPipeline(prefix...)
				if err != nil {
					t.Fatal(err)
				}
				m := p.Module.Clone()
				if err := pipe.Run(m, &compiler.Options{}); err != nil {
					t.Fatalf("%s seed %d after %v: %v", preset, seed, prefix, err)
				}
				res, err := dialects.NewExecutor().Run(m, "main")
				if err != nil {
					t.Fatalf("%s seed %d after %v: %v", preset, seed, prefix, err)
				}
				if res.Output != p.Expected {
					t.Fatalf("%s seed %d after %v: output %q, expected %q",
						preset, seed, prefix, res.Output, p.Expected)
				}
			}
		}
	}
}
