package compiler_test

import (
	"testing"

	"ratte/internal/compiler"
	"ratte/internal/dialects"
	"ratte/internal/gen"
	"ratte/internal/ir"
)

// TestPassPrefixesPreserveSemantics is the strongest pass-correctness
// property the substrate offers: for generated (UB-free) programs, the
// module after EVERY prefix of the ariths pipeline — a mixed-dialect
// module mid-lowering — still executes to the reference output. A pass
// that corrupts semantics anywhere in the pipeline fails here with the
// exact prefix identified.
func TestPassPrefixesPreserveSemantics(t *testing.T) {
	names, err := compiler.PipelineFor("ariths", compiler.O2)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(200); seed < 212; seed++ {
		p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for prefix := 0; prefix <= len(names); prefix++ {
			pipe, err := compiler.NewPipeline(names[:prefix]...)
			if err != nil {
				t.Fatal(err)
			}
			m := p.Module.Clone()
			if err := pipe.Run(m, &compiler.Options{}); err != nil {
				t.Fatalf("seed %d prefix %v: %v", seed, names[:prefix], err)
			}
			res, err := dialects.NewExecutor().Run(m, "main")
			if err != nil {
				t.Fatalf("seed %d after %v: execution failed: %v\n%s",
					seed, names[:prefix], err, ir.Print(m))
			}
			if res.Output != p.Expected {
				t.Fatalf("seed %d after %v: output %q, expected %q\n%s",
					seed, names[:prefix], res.Output, p.Expected, ir.Print(m))
			}
		}
	}
}

// TestCanonicalizeIdempotent: a second canonicalize run must be a
// no-op (the fixpoint property of the greedy rewriter).
func TestCanonicalizeIdempotent(t *testing.T) {
	for seed := int64(300); seed < 312; seed++ {
		p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		pipe, _ := compiler.NewPipeline("canonicalize")
		m := p.Module.Clone()
		if err := pipe.Run(m, &compiler.Options{}); err != nil {
			t.Fatal(err)
		}
		once := ir.Print(m)
		if err := pipe.Run(m, &compiler.Options{}); err != nil {
			t.Fatal(err)
		}
		if twice := ir.Print(m); twice != once {
			t.Fatalf("seed %d: canonicalize not idempotent:\n--- once ---\n%s\n--- twice ---\n%s",
				seed, once, twice)
		}
	}
}

// TestCSEIdempotent: likewise for CSE.
func TestCSEIdempotent(t *testing.T) {
	for seed := int64(400); seed < 410; seed++ {
		p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		pipe, _ := compiler.NewPipeline("cse")
		m := p.Module.Clone()
		if err := pipe.Run(m, &compiler.Options{}); err != nil {
			t.Fatal(err)
		}
		once := ir.Print(m)
		if err := pipe.Run(m, &compiler.Options{}); err != nil {
			t.Fatal(err)
		}
		if twice := ir.Print(m); twice != once {
			t.Fatalf("seed %d: cse not idempotent", seed)
		}
	}
}

// TestOptimisationShrinksOrPreserves: canonicalize+cse never grow a
// generated module (they fold, dedup and DCE).
func TestOptimisationShrinksOrPreserves(t *testing.T) {
	for seed := int64(500); seed < 515; seed++ {
		p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 30, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		before := p.Module.NumOps()
		pipe, _ := compiler.NewPipeline("canonicalize", "cse", "canonicalize")
		m := p.Module.Clone()
		if err := pipe.Run(m, &compiler.Options{}); err != nil {
			t.Fatal(err)
		}
		if after := m.NumOps(); after > before {
			t.Errorf("seed %d: optimisation grew module %d -> %d", seed, before, after)
		}
	}
}

// TestLoweredTensorPipelineMilestones: the tensor/linalg pipelines are
// checked at their executable milestones (source, post-loops, fully
// lowered); the bufferised-but-not-yet-looped state is internal-only.
func TestLoweredTensorPipelineMilestones(t *testing.T) {
	for _, preset := range []string{"tensor", "linalggeneric"} {
		names, err := compiler.PipelineFor(preset, compiler.O1)
		if err != nil {
			t.Fatal(err)
		}
		// Find the index just after convert-linalg-to-loops.
		loopsAt := -1
		for i, n := range names {
			if n == "convert-linalg-to-loops" {
				loopsAt = i + 1
			}
		}
		if loopsAt < 0 {
			t.Fatalf("%s pipeline misses convert-linalg-to-loops: %v", preset, names)
		}
		for seed := int64(600); seed < 606; seed++ {
			p, err := gen.Generate(gen.Config{Preset: preset, Size: 20, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			for _, prefix := range [][]string{names[:loopsAt], names} {
				pipe, err := compiler.NewPipeline(prefix...)
				if err != nil {
					t.Fatal(err)
				}
				m := p.Module.Clone()
				if err := pipe.Run(m, &compiler.Options{}); err != nil {
					t.Fatalf("%s seed %d after %v: %v", preset, seed, prefix, err)
				}
				res, err := dialects.NewExecutor().Run(m, "main")
				if err != nil {
					t.Fatalf("%s seed %d after %v: %v", preset, seed, prefix, err)
				}
				if res.Output != p.Expected {
					t.Fatalf("%s seed %d after %v: output %q, expected %q",
						preset, seed, prefix, res.Output, p.Expected)
				}
			}
		}
	}
}
