package compiler_test

import (
	"errors"
	"strings"
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/dialects"
	"ratte/internal/interp"
	"ratte/internal/ir"
)

func mustParse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

// refOutput runs the reference interpreter.
func refOutput(t *testing.T, src string) string {
	t.Helper()
	res, err := dialects.NewReferenceInterpreter().Run(mustParse(t, src), "main")
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return res.Output
}

// compileAndRun compiles with the given preset/level/bugs and executes.
func compileAndRun(t *testing.T, src, preset string, level compiler.OptLevel, bugSet bugs.Set) (string, error) {
	t.Helper()
	c := &compiler.Compiler{Bugs: bugSet, Level: level, VerifyBetweenPasses: true}
	lowered, err := c.Compile(mustParse(t, src), preset)
	if err != nil {
		return "", err
	}
	res, err := dialects.NewExecutor().Run(lowered, "main")
	if err != nil {
		return "", err
	}
	return res.Output, nil
}

// expectAgree asserts that, with no bugs, compiled output at every opt
// level matches the reference interpreter.
func expectAgree(t *testing.T, src, preset string) {
	t.Helper()
	want := refOutput(t, src)
	for _, level := range compiler.OptLevels {
		got, err := compileAndRun(t, src, preset, level, bugs.None())
		if err != nil {
			t.Fatalf("O%d: %v", int(level), err)
		}
		if got != want {
			t.Errorf("O%d output %q, reference %q", int(level), got, want)
		}
	}
}

const figure2Src = `"builtin.module"() ({
  "func.func"() ({
    %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
    %0 = "func.call"() {callee = @one} : () -> (i1)
    %low, %high = "arith.mulsi_extended"(%0, %n1) : (i1, i1) -> (i1, i1)
    "vector.print"(%low) : (i1) -> ()
    "vector.print"(%high) : (i1) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
    "func.return"(%n1) : (i1) -> ()
  }) {sym_name = "one", function_type = () -> (i1)} : () -> ()
}) : () -> ()`

const figure12Src = `"builtin.module"() ({
  "func.func"() ({
    %cm, %cn1 = "func.call"() {callee = @func1} : () -> (i64, i64)
    %1 = "arith.floordivsi"(%cm, %cn1) : (i64, i64) -> (i64)
    "vector.print"(%1) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %cm = "arith.constant"() {value = -9223372036854775807 : i64} : () -> (i64)
    %cn1 = "arith.constant"() {value = -1 : i64} : () -> (i64)
    "func.return"(%cm, %cn1) : (i64, i64) -> ()
  }) {sym_name = "func1", function_type = () -> (i64, i64)} : () -> ()
}) : () -> ()`

func TestCorrectCompilerAgreesOnFigure2(t *testing.T) {
	expectAgree(t, figure2Src, "ariths")
}

func TestCorrectCompilerAgreesOnFigure12(t *testing.T) {
	if got := refOutput(t, figure12Src); got != "9223372036854775807\n" {
		t.Fatalf("reference output %q", got)
	}
	expectAgree(t, figure12Src, "ariths")
}

// Figure 2 / bug 5: with the buggy i1 mulsi_extended canonicalization,
// optimised builds print -1 for the high half instead of 0 — a
// DT-R-visible miscompilation that DT-O at O0 misses.
func TestBug5MulsiExtendedI1(t *testing.T) {
	want := refOutput(t, figure2Src)
	buggy := bugs.Only(bugs.MulsiExtendedI1Fold)

	got0, err := compileAndRun(t, figure2Src, "ariths", compiler.O0, buggy)
	if err != nil {
		t.Fatal(err)
	}
	if got0 != want {
		t.Errorf("bug 5 should not affect O0 (no canonicalize), got %q", got0)
	}

	got1, err := compileAndRun(t, figure2Src, "ariths", compiler.O1, buggy)
	if err != nil {
		t.Fatal(err)
	}
	if got1 == want {
		t.Errorf("bug 5 must miscompile at O1: got reference output %q", got1)
	}
	if got1 != "-1\n-1\n" {
		t.Errorf("bug 5 output %q, expected the paper's -1/-1", got1)
	}
}

// Figure 12 / bug 7: the buggy floordivsi expansion computes
// -2^63 / -1 as an intermediate, trapping at runtime (NC oracle) at
// EVERY optimisation level — invisible to DT-O.
func TestBug7FloorDivExpansion(t *testing.T) {
	buggy := bugs.Only(bugs.FloorDivSiExpand)
	for _, level := range compiler.OptLevels {
		_, err := compileAndRun(t, figure12Src, "ariths", level, buggy)
		if err == nil {
			t.Fatalf("O%d: bug 7 should trap at runtime", int(level))
		}
		if !interp.IsTrap(err) {
			t.Fatalf("O%d: expected a trap, got %v", int(level), err)
		}
	}
}

// Bug 8: ceildivsi expanded as -floordiv(-a, b) silently wraps for
// a = INT_MIN; wrong value, no trap, at every level (DT-R only).
func TestBug8CeilDivExpansion(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a, %b = "func.call"() {callee = @c} : () -> (i8, i8)
    %q = "arith.ceildivsi"(%a, %b) : (i8, i8) -> (i8)
    "vector.print"(%q) : (i8) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = -128 : i8} : () -> (i8)
    %b = "arith.constant"() {value = 3 : i8} : () -> (i8)
    "func.return"(%a, %b) : (i8, i8) -> ()
  }) {sym_name = "c", function_type = () -> (i8, i8)} : () -> ()
}) : () -> ()`
	want := refOutput(t, src)
	if want != "-42\n" {
		t.Fatalf("reference says %q, want -42", want)
	}
	expectAgree(t, src, "ariths")

	for _, level := range compiler.OptLevels {
		got, err := compileAndRun(t, src, "ariths", level, bugs.Only(bugs.CeilDivSiExpand))
		if err != nil {
			t.Fatalf("O%d: %v", int(level), err)
		}
		if got == want {
			t.Errorf("O%d: bug 8 must change the output", int(level))
		}
	}
}

// Bug 6 lives in convert-arith-to-llvm's direct ceildivsi conversion,
// which is only exercised when arith-expand does not expand first; it
// uses the positive-only formula.
func TestBug6CeilDivDirectConversion(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a, %b = "func.call"() {callee = @c} : () -> (i64, i64)
    %q = "arith.ceildivsi"(%a, %b) : (i64, i64) -> (i64)
    "vector.print"(%q) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = -6 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 2 : i64} : () -> (i64)
    "func.return"(%a, %b) : (i64, i64) -> ()
  }) {sym_name = "c", function_type = () -> (i64, i64)} : () -> ()
}) : () -> ()`
	// Run a pipeline without arith-expand so the direct conversion
	// fires: build it by hand.
	run := func(bugSet bugs.Set) (string, error) {
		m := mustParse(t, src)
		pipe, err := compiler.NewPipeline("convert-scf-to-cf", "convert-arith-to-llvm", "convert-vector-to-llvm", "convert-func-to-llvm")
		if err != nil {
			t.Fatal(err)
		}
		out := m.Clone()
		if err := pipe.Run(out, &compiler.Options{Bugs: bugSet}); err != nil {
			return "", err
		}
		res, err := dialects.NewExecutor().Run(out, "main")
		if err != nil {
			return "", err
		}
		return res.Output, nil
	}
	good, err := run(bugs.None())
	if err != nil {
		t.Fatal(err)
	}
	if good != "-3\n" {
		t.Fatalf("correct direct conversion printed %q, want -3 (ceil(-6/2))", good)
	}
	bad, err := run(bugs.Only(bugs.CeilDivSiConvert))
	if err != nil {
		t.Fatal(err)
	}
	// (a + b - 1)/b = (-6+2-1)/2 = -5/2 = -2: wrong.
	if bad != "-2\n" {
		t.Errorf("buggy direct conversion printed %q, want -2", bad)
	}
}

// Bug 4: convert-arith-to-llvm rejects addui_extended over i1.
func TestBug4AdduiExtendedRejection(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a, %b = "func.call"() {callee = @c} : () -> (i1, i1)
    %s, %o = "arith.addui_extended"(%a, %b) : (i1, i1) -> (i1, i1)
    "vector.print"(%s) : (i1) -> ()
    "vector.print"(%o) : (i1) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = -1 : i1} : () -> (i1)
    %b = "arith.constant"() {value = -1 : i1} : () -> (i1)
    "func.return"(%a, %b) : (i1, i1) -> ()
  }) {sym_name = "c", function_type = () -> (i1, i1)} : () -> ()
}) : () -> ()`
	// 1 + 1 on i1: sum 0, carry 1.
	if want := refOutput(t, src); want != "0\n-1\n" {
		t.Fatalf("reference output %q", want)
	}
	expectAgree(t, src, "ariths")

	_, err := compileAndRun(t, src, "ariths", compiler.O0, bugs.Only(bugs.AdduiExtendedLegalize))
	if err == nil {
		t.Fatal("bug 4 must reject the module")
	}
	var pe *compiler.PassError
	if !errors.As(err, &pe) || pe.Pass != "convert-arith-to-llvm" {
		t.Errorf("rejection should come from convert-arith-to-llvm, got %v", err)
	}
}

// Bug 3: remove-dead-values (O2 only) rejects modules with an unused
// func.call result.
func TestBug3RemoveDeadValuesRejection(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a, %b = "func.call"() {callee = @c} : () -> (i64, i64)
    "vector.print"(%a) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 2 : i64} : () -> (i64)
    "func.return"(%a, %b) : (i64, i64) -> ()
  }) {sym_name = "c", function_type = () -> (i64, i64)} : () -> ()
}) : () -> ()`
	expectAgree(t, src, "ariths")

	_, err := compileAndRun(t, src, "ariths", compiler.O2, bugs.Only(bugs.RemoveDeadValuesCall))
	if err == nil {
		t.Fatal("bug 3 must reject the module at O2")
	}
	var pe *compiler.PassError
	if !errors.As(err, &pe) || pe.Pass != "remove-dead-values" {
		t.Errorf("rejection should come from remove-dead-values, got %v", err)
	}

	// At O0/O1 the pass does not run, so the bug is invisible.
	if _, err := compileAndRun(t, src, "ariths", compiler.O1, bugs.Only(bugs.RemoveDeadValuesCall)); err != nil {
		t.Errorf("bug 3 must not fire at O1: %v", err)
	}
}

// Bug 1: the index_castui constant fold sign-extends.
func TestBug1IndexCastUIFold(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = -1 : i8} : () -> (i8)
    %i = "arith.index_castui"(%a) : (i8) -> (index)
    "vector.print"(%i) : (index) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	want := refOutput(t, src)
	if want != "255\n" {
		t.Fatalf("reference output %q", want)
	}
	expectAgree(t, src, "ariths")

	got, err := compileAndRun(t, src, "ariths", compiler.O1, bugs.Only(bugs.IndexCastUIFold))
	if err != nil {
		t.Fatal(err)
	}
	if got != "-1\n" {
		t.Errorf("bug 1 at O1 printed %q, want -1 (sign-extended fold)", got)
	}
	// At O0 there is no canonicalize, so the bug is invisible.
	got0, err := compileAndRun(t, src, "ariths", compiler.O0, bugs.Only(bugs.IndexCastUIFold))
	if err != nil {
		t.Fatal(err)
	}
	if got0 != want {
		t.Errorf("bug 1 must not fire at O0, got %q", got0)
	}
}

// Bug 2: the index_cast chain fold drops the truncation.
func TestBug2IndexCastChainFold(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %big = "func.call"() {callee = @c} : () -> (index)
    %n = "arith.index_cast"(%big) : (index) -> (i8)
    %back = "arith.index_cast"(%n) : (i8) -> (index)
    "vector.print"(%back) : (index) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = 300 : index} : () -> (index)
    "func.return"(%a) : (index) -> ()
  }) {sym_name = "c", function_type = () -> (index)} : () -> ()
}) : () -> ()`
	// 300 -> i8 is 44; back to index is 44.
	want := refOutput(t, src)
	if want != "44\n" {
		t.Fatalf("reference output %q", want)
	}
	expectAgree(t, src, "ariths")

	got, err := compileAndRun(t, src, "ariths", compiler.O1, bugs.Only(bugs.IndexCastChainFold))
	if err != nil {
		t.Fatal(err)
	}
	if got != "300\n" {
		t.Errorf("bug 2 at O1 printed %q, want 300 (dropped truncation)", got)
	}
}

func TestScfIfLoweringAgrees(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %c = "func.call"() {callee = @cond} : () -> (i1)
    %a = "arith.constant"() {value = 11 : i64} : () -> (i64)
    %r = "scf.if"(%c) ({
      %x = "arith.muli"(%a, %a) : (i64, i64) -> (i64)
      "scf.yield"(%x) : (i64) -> ()
    }, {
      %y = "arith.addi"(%a, %a) : (i64, i64) -> (i64)
      "scf.yield"(%y) : (i64) -> ()
    }) : (i1) -> (i64)
    "vector.print"(%r) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %t = "arith.constant"() {value = 1 : i1} : () -> (i1)
    "func.return"(%t) : (i1) -> ()
  }) {sym_name = "cond", function_type = () -> (i1)} : () -> ()
}) : () -> ()`
	if refOutput(t, src) != "121\n" {
		t.Fatal("reference wrong")
	}
	expectAgree(t, src, "ariths")
}

func TestNestedScfLowering(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %t = "func.call"() {callee = @cond} : () -> (i1)
    %a = "arith.constant"() {value = 2 : i64} : () -> (i64)
    %r = "scf.if"(%t) ({
      %inner = "scf.if"(%t) ({
        %x = "arith.muli"(%a, %a) : (i64, i64) -> (i64)
        "scf.yield"(%x) : (i64) -> ()
      }, {
        "scf.yield"(%a) : (i64) -> ()
      }) : (i1) -> (i64)
      %y = "arith.addi"(%inner, %a) : (i64, i64) -> (i64)
      "scf.yield"(%y) : (i64) -> ()
    }, {
      "scf.yield"(%a) : (i64) -> ()
    }) : (i1) -> (i64)
    "vector.print"(%r) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %t = "arith.constant"() {value = 1 : i1} : () -> (i1)
    "func.return"(%t) : (i1) -> ()
  }) {sym_name = "cond", function_type = () -> (i1)} : () -> ()
}) : () -> ()`
	if refOutput(t, src) != "6\n" {
		t.Fatal("reference wrong")
	}
	expectAgree(t, src, "ariths")
}

func TestTensorPipelineAgrees(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %c = "arith.constant"() {value = dense<[1, 2, 3, 4]> : tensor<2x2xi64>} : () -> (tensor<2x2xi64>)
    %i0 = "arith.constant"() {value = 0 : index} : () -> (index)
    %i1 = "arith.constant"() {value = 1 : index} : () -> (index)
    %v = "arith.constant"() {value = 9 : i64} : () -> (i64)
    %t2 = "tensor.insert"(%v, %c, %i1, %i0) : (i64, tensor<2x2xi64>, index, index) -> (tensor<2x2xi64>)
    %e = "tensor.extract"(%t2, %i1, %i0) : (tensor<2x2xi64>, index, index) -> (i64)
    %old = "tensor.extract"(%c, %i1, %i0) : (tensor<2x2xi64>, index, index) -> (i64)
    %d = "tensor.dim"(%c, %i1) : (tensor<2x2xi64>, index) -> (index)
    "vector.print"(%e) : (i64) -> ()
    "vector.print"(%old) : (i64) -> ()
    "vector.print"(%d) : (index) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	if refOutput(t, src) != "9\n3\n2\n" {
		t.Fatal("reference wrong")
	}
	expectAgree(t, src, "tensor")
}

func TestLinalgPipelineAgrees(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = dense<[1, 2, 3, 4]> : tensor<2x2xi64>} : () -> (tensor<2x2xi64>)
    %b = "arith.constant"() {value = dense<[10, 20, 30, 40]> : tensor<2x2xi64>} : () -> (tensor<2x2xi64>)
    %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %init = "tensor.empty"() : () -> (tensor<2x2xi64>)
    %out = "linalg.fill"(%z, %init) : (i64, tensor<2x2xi64>) -> (tensor<2x2xi64>)
    %r = "linalg.generic"(%a, %b, %out) ({
    ^bb0(%x: i64, %y: i64, %acc: i64):
      %s = "arith.addi"(%x, %y) : (i64, i64) -> (i64)
      "linalg.yield"(%s) : (i64) -> ()
    }) {
      indexing_maps = [affine_map<(d0, d1) -> (d0, d1)>, affine_map<(d0, d1) -> (d1, d0)>, affine_map<(d0, d1) -> (d0, d1)>],
      iterator_types = ["parallel", "parallel"],
      operand_segment_sizes = [2 : i64, 1 : i64]
    } : (tensor<2x2xi64>, tensor<2x2xi64>, tensor<2x2xi64>) -> (tensor<2x2xi64>)
    %i0 = "arith.constant"() {value = 0 : index} : () -> (index)
    %i1 = "arith.constant"() {value = 1 : index} : () -> (index)
    %e00 = "tensor.extract"(%r, %i0, %i0) : (tensor<2x2xi64>, index, index) -> (i64)
    %e01 = "tensor.extract"(%r, %i0, %i1) : (tensor<2x2xi64>, index, index) -> (i64)
    %e10 = "tensor.extract"(%r, %i1, %i0) : (tensor<2x2xi64>, index, index) -> (i64)
    %e11 = "tensor.extract"(%r, %i1, %i1) : (tensor<2x2xi64>, index, index) -> (i64)
    "vector.print"(%e00) : (i64) -> ()
    "vector.print"(%e01) : (i64) -> ()
    "vector.print"(%e10) : (i64) -> ()
    "vector.print"(%e11) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	if refOutput(t, src) != "11\n32\n23\n44\n" {
		t.Fatalf("reference wrong: %q", refOutput(t, src))
	}
	expectAgree(t, src, "linalggeneric")
}

func TestTensorGeneratePipelineAgrees(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %n = "func.call"() {callee = @size} : () -> (index)
    %g = "tensor.generate"(%n) ({
    ^bb0(%i: index):
      %x = "arith.index_cast"(%i) : (index) -> (i64)
      %two = "arith.constant"() {value = 3 : i64} : () -> (i64)
      %y = "arith.muli"(%x, %two) : (i64, i64) -> (i64)
      "tensor.yield"(%y) : (i64) -> ()
    }) : (index) -> (tensor<?xi64>)
    %i2 = "arith.constant"() {value = 2 : index} : () -> (index)
    %e = "tensor.extract"(%g, %i2) : (tensor<?xi64>, index) -> (i64)
    "vector.print"(%e) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %n = "arith.constant"() {value = 4 : index} : () -> (index)
    "func.return"(%n) : (index) -> ()
  }) {sym_name = "size", function_type = () -> (index)} : () -> ()
}) : () -> ()`
	if refOutput(t, src) != "6\n" {
		t.Fatal("reference wrong")
	}
	expectAgree(t, src, "tensor")
}

func TestCanonicalizeFoldsConstants(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 6 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 7 : i64} : () -> (i64)
    %p = "arith.muli"(%a, %b) : (i64, i64) -> (i64)
    "vector.print"(%p) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m := mustParse(t, src)
	pipe, err := compiler.NewPipeline("canonicalize")
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Run(m, &compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	// After folding + DCE only a constant 42 and the print remain.
	muls := 0
	consts := 0
	m.Walk(func(op *ir.Operation) bool {
		switch op.Name {
		case "arith.muli":
			muls++
		case "arith.constant":
			consts++
		}
		return true
	})
	if muls != 0 {
		t.Errorf("muli not folded:\n%s", ir.Print(m))
	}
	if consts != 1 {
		t.Errorf("%d constants survive DCE, want 1:\n%s", consts, ir.Print(m))
	}
	res, err := dialects.NewReferenceInterpreter().Run(m, "main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "42\n" {
		t.Errorf("folded module prints %q", res.Output)
	}
}

func TestCanonicalizeDoesNotFoldUB(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %q = "arith.divsi"(%a, %z) : (i64, i64) -> (i64)
    "vector.print"(%q) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m := mustParse(t, src)
	pipe, _ := compiler.NewPipeline("canonicalize")
	if err := pipe.Run(m, &compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	divs := 0
	m.Walk(func(op *ir.Operation) bool {
		if op.Name == "arith.divsi" {
			divs++
		}
		return true
	})
	if divs != 1 {
		t.Errorf("division by zero must not be folded away:\n%s", ir.Print(m))
	}
}

func TestCSEDeduplicates(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
  ^bb0(%x: i64):
    %a = "arith.addi"(%x, %x) : (i64, i64) -> (i64)
    %b = "arith.addi"(%x, %x) : (i64, i64) -> (i64)
    %c = "arith.muli"(%a, %b) : (i64, i64) -> (i64)
    "func.return"(%c) : (i64) -> ()
  }) {sym_name = "main", function_type = (i64) -> (i64)} : () -> ()
}) : () -> ()`
	m := mustParse(t, src)
	pipe, _ := compiler.NewPipeline("cse")
	if err := pipe.Run(m, &compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	adds := 0
	m.Walk(func(op *ir.Operation) bool {
		if op.Name == "arith.addi" {
			adds++
		}
		return true
	})
	if adds != 1 {
		t.Errorf("CSE left %d addi ops, want 1:\n%s", adds, ir.Print(m))
	}
}

func TestPipelineForRejectsUnknown(t *testing.T) {
	if _, err := compiler.PipelineFor("nope", compiler.O0); err == nil {
		t.Error("unknown preset should error")
	}
	if _, err := compiler.NewPipeline("not-a-pass"); err == nil {
		t.Error("unknown pass should error")
	}
}

func TestCompileRejectsInvalidModule(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 3 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 7 : i32} : () -> (i32)
    %s = "arith.addi"(%a, %b) : (i64, i32) -> (i64)
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	c := &compiler.Compiler{}
	if _, err := c.Compile(mustParse(t, src), "ariths"); err == nil {
		t.Error("invalid module must be rejected by the frontend verifier")
	}
}

func TestLoweredModuleHasNoSourceOps(t *testing.T) {
	c := &compiler.Compiler{Level: compiler.O1}
	lowered, err := c.Compile(mustParse(t, figure12Src), "ariths")
	if err != nil {
		t.Fatal(err)
	}
	lowered.Walk(func(op *ir.Operation) bool {
		switch op.Dialect() {
		case "arith", "scf", "func", "vector", "tensor", "linalg":
			t.Errorf("source op %s survived lowering", op.Name)
		}
		return true
	})
	if !strings.Contains(ir.Print(lowered), "llvm.func") {
		t.Error("lowered module should contain llvm.func")
	}
}
