package compiler

import (
	"ratte/internal/ir"
)

// runCSE performs common-subexpression elimination: within each block
// (and, through Standard scoping, from enclosing blocks into nested
// regions), structurally identical pure operations are deduplicated and
// later copies' results re-wired to the first instance.
func runCSE(m *ir.Module, opts *Options) error {
	for _, f := range funcsOf(m) {
		e := &cser{f: f, opts: opts}
		for _, r := range f.Regions {
			for _, b := range r.Blocks {
				e.block(b, map[string][]ir.Value{})
			}
		}
	}
	return nil
}

type cser struct {
	f    *ir.Operation
	opts *Options
}

func (e *cser) block(b *ir.Block, seen map[string][]ir.Value) {
	var out []*ir.Operation
	for _, op := range b.Ops {
		if isPure(op) {
			key := opKey(op)
			if prev, ok := seen[key]; ok {
				for i, r := range op.Results {
					e.replaceAllUses(r.ID, prev[i])
				}
				e.opts.cover(covCSEDedup, op.Name)
				continue // drop the duplicate
			}
			seen[key] = op.Results
		}
		// Nested regions see the enclosing expressions (Standard
		// scoping); each region gets its own copy of the table so
		// sibling regions cannot share region-local expressions.
		for _, r := range op.Regions {
			for _, nb := range r.Blocks {
				inner := make(map[string][]ir.Value, len(seen))
				for k, v := range seen {
					inner[k] = v
				}
				e.block(nb, inner)
			}
		}
		out = append(out, op)
	}
	b.Ops = out
}

func (e *cser) replaceAllUses(id string, repl ir.Value) {
	for _, r := range e.f.Regions {
		for _, b := range r.Blocks {
			replaceUsesInOps(b.Ops, id, repl)
		}
	}
}
