package compiler

import (
	"fmt"
	"strconv"
	"strings"

	"ratte/internal/ir"
)

// namer hands out SSA value IDs that are fresh within one function.
type namer struct {
	used map[string]bool
	n    int
}

func newNamer(f *ir.Operation) *namer {
	nm := &namer{used: make(map[string]bool)}
	f.Walk(func(op *ir.Operation) bool {
		for _, r := range op.Results {
			nm.used[r.ID] = true
		}
		for _, reg := range op.Regions {
			for _, b := range reg.Blocks {
				for _, a := range b.Args {
					nm.used[a.ID] = true
				}
			}
		}
		return true
	})
	return nm
}

// Fresh returns an unused SSA id.
func (nm *namer) Fresh() string {
	for {
		id := "v" + strconv.Itoa(nm.n)
		nm.n++
		if !nm.used[id] {
			nm.used[id] = true
			return id
		}
	}
}

// Value allocates a fresh value of the given type.
func (nm *namer) Value(t ir.Type) ir.Value { return ir.V(nm.Fresh(), t) }

// blockNamer hands out block labels that are fresh within one function.
type blockNamer struct {
	used map[string]bool
	n    int
}

func newBlockNamer(f *ir.Operation) *blockNamer {
	bn := &blockNamer{used: make(map[string]bool)}
	f.Walk(func(op *ir.Operation) bool {
		for _, reg := range op.Regions {
			for _, b := range reg.Blocks {
				bn.used[b.Label] = true
			}
		}
		return true
	})
	return bn
}

// Fresh returns an unused block label.
func (bn *blockNamer) Fresh(hint string) string {
	for {
		label := hint + strconv.Itoa(bn.n)
		bn.n++
		if !bn.used[label] {
			bn.used[label] = true
			return label
		}
	}
}

// replaceUsesInOps rewrites every use of the value named old to the
// replacement value, recursing into nested regions and successor
// arguments. Generated IDs are unique per function, so shadowing is not
// a concern.
func replaceUsesInOps(ops []*ir.Operation, old string, repl ir.Value) {
	for _, op := range ops {
		replaceUsesInOp(op, old, repl)
	}
}

func replaceUsesInOp(op *ir.Operation, old string, repl ir.Value) {
	for i, operand := range op.Operands {
		if operand.ID == old {
			op.Operands[i] = repl
		}
	}
	for si := range op.Successors {
		for ai, a := range op.Successors[si].Args {
			if a.ID == old {
				op.Successors[si].Args[ai] = repl
			}
		}
	}
	for _, r := range op.Regions {
		for _, b := range r.Blocks {
			replaceUsesInOps(b.Ops, old, repl)
		}
	}
}

// renameUses rewrites uses according to a substitution map (ID -> value),
// recursing into regions; used when inlining cloned region bodies.
func renameUses(ops []*ir.Operation, subst map[string]ir.Value) {
	for _, op := range ops {
		for i, operand := range op.Operands {
			if v, ok := subst[operand.ID]; ok {
				op.Operands[i] = v
			}
		}
		for si := range op.Successors {
			for ai, a := range op.Successors[si].Args {
				if v, ok := subst[a.ID]; ok {
					op.Successors[si].Args[ai] = v
				}
			}
		}
		for _, r := range op.Regions {
			for _, b := range r.Blocks {
				renameUses(b.Ops, subst)
			}
		}
	}
}

// pureOps lists side-effect-free operations whose unused results may be
// removed and whose identical instances may be shared (CSE).
var pureOps = map[string]bool{}

func init() {
	for _, name := range []string{
		"arith.constant",
		"arith.addi", "arith.subi", "arith.muli",
		"arith.andi", "arith.ori", "arith.xori",
		"arith.maxsi", "arith.maxui", "arith.minsi", "arith.minui",
		"arith.cmpi", "arith.select",
		"arith.addui_extended", "arith.mulsi_extended", "arith.mului_extended",
		"arith.extsi", "arith.extui", "arith.trunci",
		"arith.index_cast", "arith.index_castui",
		// The division family is pure but trapping/UB-carrying: it may
		// be removed when dead (removing UB is sound) but must not be
		// speculated. DCE-only purity is what this set encodes.
		"arith.divsi", "arith.divui", "arith.remsi", "arith.remui",
		"arith.ceildivsi", "arith.ceildivui", "arith.floordivsi",
		"arith.shli", "arith.shrsi", "arith.shrui",
		"tensor.empty", "tensor.extract", "tensor.dim", "tensor.cast",
		"llvm.mlir.constant",
	} {
		pureOps[name] = true
	}
}

// isPure reports whether an op is side-effect free.
func isPure(op *ir.Operation) bool { return pureOps[op.Name] && len(op.Regions) == 0 }

// funcsOf returns the function ops of a module.
func funcsOf(m *ir.Module) []*ir.Operation { return m.Funcs() }

// forEachBlock applies fn to every block nested anywhere below op,
// including blocks of nested regions, innermost last.
func forEachBlock(op *ir.Operation, fn func(b *ir.Block) error) error {
	for _, r := range op.Regions {
		for _, b := range r.Blocks {
			for _, inner := range b.Ops {
				if err := forEachBlock(inner, fn); err != nil {
					return err
				}
			}
			if err := fn(b); err != nil {
				return err
			}
		}
	}
	return nil
}

// constInt returns the integer payload of an arith.constant/
// llvm.mlir.constant defining op, given the defs map maintained by a
// pass walk.
type constMap map[string]ir.IntegerAttr

// record notes op's constant result if it is a scalar constant.
func (cm constMap) record(op *ir.Operation) {
	if op.Name != "arith.constant" && op.Name != "llvm.mlir.constant" {
		return
	}
	if len(op.Results) != 1 {
		return
	}
	if a, ok := op.Attrs.Get("value").(ir.IntegerAttr); ok {
		cm[op.Results[0].ID] = a
	}
}

// lookup resolves a value to its constant, if known.
func (cm constMap) lookup(v ir.Value) (ir.IntegerAttr, bool) {
	a, ok := cm[v.ID]
	return a, ok
}

// opKey builds a structural key for CSE: name, operand IDs, attributes
// and result types.
func opKey(op *ir.Operation) string {
	var b strings.Builder
	b.WriteString(op.Name)
	for _, o := range op.Operands {
		b.WriteByte('|')
		b.WriteString(o.ID)
	}
	b.WriteByte('#')
	b.WriteString(op.Attrs.String())
	for _, r := range op.Results {
		b.WriteByte('~')
		b.WriteString(r.Type.String())
	}
	return b.String()
}

// usedIDs collects every value ID used (as operand or successor arg)
// anywhere below the given ops, including nested regions.
func usedIDs(ops []*ir.Operation) map[string]int {
	uses := make(map[string]int)
	var walk func(ops []*ir.Operation)
	walk = func(ops []*ir.Operation) {
		for _, op := range ops {
			for _, o := range op.Operands {
				uses[o.ID]++
			}
			for _, s := range op.Successors {
				for _, a := range s.Args {
					uses[a.ID]++
				}
			}
			for _, r := range op.Regions {
				for _, b := range r.Blocks {
					walk(b.Ops)
				}
			}
		}
	}
	walk(ops)
	return uses
}

// intAttrOf builds the IntegerAttr for a value of the given scalar type.
func intAttrOf(v int64, t ir.Type) ir.IntegerAttr { return ir.IntAttr(v, t) }

// buildConst builds an arith.constant op defining value v.
func buildConst(nm *namer, v int64, t ir.Type) (*ir.Operation, ir.Value) {
	op := ir.NewOp("arith.constant")
	op.Attrs.Set("value", intAttrOf(v, t))
	res := nm.Value(t)
	op.Results = []ir.Value{res}
	return op, res
}

// buildOp1 builds a single-result op.
func buildOp1(nm *namer, name string, resType ir.Type, operands ...ir.Value) (*ir.Operation, ir.Value) {
	op := ir.NewOp(name)
	op.Operands = operands
	res := nm.Value(resType)
	op.Results = []ir.Value{res}
	return op, res
}

// mustType formats an internal invariant violation.
func mustType(cond bool, format string, args ...any) error {
	if cond {
		return nil
	}
	return fmt.Errorf(format, args...)
}
