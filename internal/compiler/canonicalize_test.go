package compiler_test

import (
	"strings"
	"testing"

	"ratte/internal/compiler"
	"ratte/internal/ir"
)

// canonicalized parses, canonicalizes and prints.
func canonicalized(t *testing.T, src string) (*ir.Module, string) {
	t.Helper()
	m := mustParse(t, src)
	pipe, _ := compiler.NewPipeline("canonicalize")
	if err := pipe.Run(m, &compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	return m, ir.Print(m)
}

func TestAlgebraicIdentities(t *testing.T) {
	// x+0, x*1, x^0, x>>0 collapse onto the argument; the ops disappear.
	src := `"builtin.module"() ({
  "func.func"() ({
  ^bb0(%x: i64):
    %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %one = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %a = "arith.addi"(%x, %z) : (i64, i64) -> (i64)
    %b = "arith.muli"(%a, %one) : (i64, i64) -> (i64)
    %c = "arith.xori"(%b, %z) : (i64, i64) -> (i64)
    %d = "arith.shrui"(%c, %z) : (i64, i64) -> (i64)
    "func.return"(%d) : (i64) -> ()
  }) {sym_name = "main", function_type = (i64) -> (i64)} : () -> ()
}) : () -> ()`
	m, _ := canonicalized(t, src)
	n := 0
	m.Walk(func(op *ir.Operation) bool {
		if op.Dialect() == "arith" {
			n++
		}
		return true
	})
	if n != 0 {
		t.Errorf("%d arith ops survive identity folding:\n%s", n, ir.Print(m))
	}
	ret := m.Func("main").Regions[0].Entry().Terminator()
	if ret.Operands[0].ID != "x" {
		t.Errorf("return should collapse to %%x, got %%%s", ret.Operands[0].ID)
	}
}

func TestCmpiSameOperandFolds(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
  ^bb0(%x: i64):
    %eq = "arith.cmpi"(%x, %x) {predicate = 0 : i64} : (i64, i64) -> (i1)
    %lt = "arith.cmpi"(%x, %x) {predicate = 2 : i64} : (i64, i64) -> (i1)
    "func.return"(%eq, %lt) : (i1, i1) -> ()
  }) {sym_name = "main", function_type = (i64) -> (i1, i1)} : () -> ()
}) : () -> ()`
	m, text := canonicalized(t, src)
	if strings.Contains(text, "arith.cmpi") {
		t.Errorf("cmpi(x, x) should fold:\n%s", text)
	}
	// eq folds to true (1... printed -1 as i1), slt to false (0).
	consts := map[int64]bool{}
	m.Walk(func(op *ir.Operation) bool {
		if op.Name == "arith.constant" {
			v, _ := op.Attrs.IntValueOf("value")
			consts[v] = true
		}
		return true
	})
	if !consts[-1] && !consts[1] {
		t.Errorf("missing true constant: %v", consts)
	}
	if !consts[0] {
		t.Errorf("missing false constant: %v", consts)
	}
}

func TestSelectSameBranchesFolds(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
  ^bb0(%c: i1, %x: i64):
    %s = "arith.select"(%c, %x, %x) : (i1, i64, i64) -> (i64)
    "func.return"(%s) : (i64) -> ()
  }) {sym_name = "main", function_type = (i1, i64) -> (i64)} : () -> ()
}) : () -> ()`
	_, text := canonicalized(t, src)
	if strings.Contains(text, "arith.select") {
		t.Errorf("select(c, x, x) should fold:\n%s", text)
	}
}

func TestFoldingReachesInsideRegions(t *testing.T) {
	// Constants defined outside fold with uses inside an scf.if region
	// (Standard scoping).
	src := `"builtin.module"() ({
  "func.func"() ({
  ^bb0(%c: i1):
    %two = "arith.constant"() {value = 2 : i64} : () -> (i64)
    %three = "arith.constant"() {value = 3 : i64} : () -> (i64)
    %r = "scf.if"(%c) ({
      %p = "arith.muli"(%two, %three) : (i64, i64) -> (i64)
      "scf.yield"(%p) : (i64) -> ()
    }, {
      "scf.yield"(%two) : (i64) -> ()
    }) : (i1) -> (i64)
    "func.return"(%r) : (i64) -> ()
  }) {sym_name = "main", function_type = (i1) -> (i64)} : () -> ()
}) : () -> ()`
	_, text := canonicalized(t, src)
	if strings.Contains(text, "arith.muli") {
		t.Errorf("const muli inside region should fold:\n%s", text)
	}
	if !strings.Contains(text, "value = 6 : i64") {
		t.Errorf("folded constant 6 missing:\n%s", text)
	}
}

func TestDCEKeepsSideEffectingOps(t *testing.T) {
	// vector.print and func.call results unused — print must stay
	// (side effect), pure ops go.
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %dead = "arith.addi"(%a, %a) : (i64, i64) -> (i64)
    "vector.print"(%a) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	_, text := canonicalized(t, src)
	if strings.Contains(text, "arith.addi") {
		t.Errorf("dead addi survives:\n%s", text)
	}
	if !strings.Contains(text, "vector.print") {
		t.Errorf("print was wrongly removed:\n%s", text)
	}
}
