package compiler

import "testing"

// TestPipelineCacheStats checks that the memoized pass-pipeline cache's
// hit/miss accounting is visible through the accessor. The cache is
// process-global, so the test asserts deltas, not absolutes.
func TestPipelineCacheStats(t *testing.T) {
	h0, m0, _ := PipelineCacheStats()

	// First use of this key either misses (fresh) or hits (another test
	// already built it); every later use must hit.
	if _, err := CachedPipeline("ariths", O2, false); err != nil {
		t.Fatal(err)
	}
	h1, m1, s1 := PipelineCacheStats()
	if (h1-h0)+(m1-m0) != 1 {
		t.Fatalf("first lookup recorded %d hits + %d misses, want exactly 1 event", h1-h0, m1-m0)
	}
	if s1 == 0 {
		t.Fatal("cache size 0 after a build")
	}

	for i := 0; i < 3; i++ {
		if _, err := CachedPipeline("ariths", O2, false); err != nil {
			t.Fatal(err)
		}
	}
	h2, m2, _ := PipelineCacheStats()
	if h2-h1 != 3 {
		t.Errorf("repeat lookups recorded %d hits, want 3", h2-h1)
	}
	if m2 != m1 {
		t.Errorf("repeat lookups recorded %d extra misses", m2-m1)
	}

	// A bad preset fails without polluting the accounting with a hit.
	if _, err := CachedPipeline("no-such-preset", O0, false); err == nil {
		t.Fatal("bad preset built a pipeline")
	}
}
