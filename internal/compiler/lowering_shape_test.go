package compiler_test

import (
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/ir"
)

// opCounts tallies op names in a module.
func opCounts(m *ir.Module) map[string]int {
	counts := map[string]int{}
	m.Walk(func(op *ir.Operation) bool {
		counts[op.Name]++
		return true
	})
	return counts
}

const floordivSrc = `"builtin.module"() ({
  "func.func"() ({
  ^bb0(%a: i64, %b: i64):
    %q = "arith.floordivsi"(%a, %b) : (i64, i64) -> (i64)
    "func.return"(%q) : (i64) -> ()
  }) {sym_name = "main", function_type = (i64, i64) -> (i64)} : () -> ()
}) : () -> ()`

// TestArithExpandShape_FloorDiv pins the structure of the correct
// floordivsi expansion: divsi + remsi + three cmpi + xori + andi + subi
// + select (plus the result alias and constants) — the
// quotient/remainder adjustment form.
func TestArithExpandShape_FloorDiv(t *testing.T) {
	m, err := ir.Parse(floordivSrc)
	if err != nil {
		t.Fatal(err)
	}
	pipe, _ := compiler.NewPipeline("arith-expand")
	if err := pipe.Run(m, &compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	counts := opCounts(m)
	if counts["arith.floordivsi"] != 0 {
		t.Fatal("floordivsi not expanded")
	}
	want := map[string]int{
		"arith.divsi":  1,
		"arith.remsi":  1,
		"arith.cmpi":   3,
		"arith.xori":   1,
		"arith.andi":   1,
		"arith.subi":   1,
		"arith.select": 1,
	}
	for op, n := range want {
		if counts[op] != n {
			t.Errorf("%s count = %d, want %d\n%s", op, counts[op], n, ir.Print(m))
		}
	}
}

// TestArithExpandShape_Buggy pins the historical buggy expansion's
// defining feature: it computes TWO divisions — the unconditional
// (x - n)/m intermediate plus the truncating quotient — where the
// correct expansion computes one.
func TestArithExpandShape_Buggy(t *testing.T) {
	m, err := ir.Parse(floordivSrc)
	if err != nil {
		t.Fatal(err)
	}
	pipe, _ := compiler.NewPipeline("arith-expand")
	if err := pipe.Run(m, &compiler.Options{Bugs: bugs.Only(bugs.FloorDivSiExpand)}); err != nil {
		t.Fatal(err)
	}
	counts := opCounts(m)
	if counts["arith.divsi"] != 2 {
		t.Errorf("buggy expansion should contain 2 divsi, has %d", counts["arith.divsi"])
	}
	if counts["arith.remsi"] != 0 {
		t.Errorf("buggy expansion should not use remsi, has %d", counts["arith.remsi"])
	}
}

// TestArithExpandFoldsConstants: constant-operand rounded divisions are
// folded (as the greedy rewriter's folders do upstream), never expanded
// — the property that keeps lowering bugs invisible to DT-O.
func TestArithExpandFoldsConstants(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = -7 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 2 : i64} : () -> (i64)
    %q = "arith.floordivsi"(%a, %b) : (i64, i64) -> (i64)
    "vector.print"(%q) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	for _, bugSet := range []bugs.Set{bugs.None(), bugs.Only(bugs.FloorDivSiExpand)} {
		m, err := ir.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		pipe, _ := compiler.NewPipeline("arith-expand")
		if err := pipe.Run(m, &compiler.Options{Bugs: bugSet}); err != nil {
			t.Fatal(err)
		}
		counts := opCounts(m)
		if counts["arith.divsi"] != 0 || counts["arith.floordivsi"] != 0 {
			t.Errorf("bugs=%v: constant floordiv should fold, got %v", bugSet, counts)
		}
	}
}

// TestArithExpandDoesNotFoldUBConstants: a constant division by zero is
// NOT folded — the UB must stay observable.
func TestArithExpandDoesNotFoldUBConstants(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 7 : i64} : () -> (i64)
    %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %q = "arith.ceildivsi"(%a, %z) : (i64, i64) -> (i64)
    "vector.print"(%q) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	pipe, _ := compiler.NewPipeline("arith-expand")
	if err := pipe.Run(m, &compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	counts := opCounts(m)
	// Expanded (not folded): the division survives as divsi ops.
	if counts["arith.divsi"] == 0 {
		t.Errorf("UB-carrying ceildiv must be expanded, not folded: %v", counts)
	}
}

// TestSCFToCFShape pins the block structure of the scf.if lowering:
// then/else/cont blocks with a cond_br diamond.
func TestSCFToCFShape(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
  ^bb0(%c: i1, %a: i64):
    %r = "scf.if"(%c) ({
      "scf.yield"(%a) : (i64) -> ()
    }, {
      %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
      "scf.yield"(%z) : (i64) -> ()
    }) : (i1) -> (i64)
    "func.return"(%r) : (i64) -> ()
  }) {sym_name = "main", function_type = (i1, i64) -> (i64)} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	pipe, _ := compiler.NewPipeline("convert-scf-to-cf")
	if err := pipe.Run(m, &compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	f := m.Func("main")
	if got := len(f.Regions[0].Blocks); got != 4 {
		t.Fatalf("expected 4 blocks (entry/then/else/cont), got %d\n%s", got, ir.Print(m))
	}
	counts := opCounts(m)
	if counts["cf.cond_br"] != 1 || counts["cf.br"] != 2 || counts["scf.if"] != 0 {
		t.Errorf("diamond shape wrong: %v", counts)
	}
}

// TestSCFToCFForShape pins the loop lowering's header/body/cont shape.
func TestSCFToCFForShape(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
  ^bb0(%n: index):
    %lb = "arith.constant"() {value = 0 : index} : () -> (index)
    %st = "arith.constant"() {value = 1 : index} : () -> (index)
    %init = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %r = "scf.for"(%lb, %n, %st, %init) ({
    ^bb1(%iv: index, %acc: i64):
      %one = "arith.constant"() {value = 1 : i64} : () -> (i64)
      %nacc = "arith.addi"(%acc, %one) : (i64, i64) -> (i64)
      "scf.yield"(%nacc) : (i64) -> ()
    }) : (index, index, index, i64) -> (i64)
    "func.return"(%r) : (i64) -> ()
  }) {sym_name = "main", function_type = (index) -> (i64)} : () -> ()
}) : () -> ()`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	pipe, _ := compiler.NewPipeline("convert-scf-to-cf")
	if err := pipe.Run(m, &compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	f := m.Func("main")
	if got := len(f.Regions[0].Blocks); got != 4 {
		t.Fatalf("expected 4 blocks (entry/header/body/cont), got %d", got)
	}
	counts := opCounts(m)
	if counts["cf.cond_br"] != 1 || counts["cf.br"] != 2 || counts["scf.for"] != 0 {
		t.Errorf("loop shape wrong: %v", counts)
	}
}
