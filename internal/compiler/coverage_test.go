package compiler

import (
	"testing"

	"ratte/internal/coverage"
)

// TestDisabledCoverAddsNoAllocs pins the hot-path cost of the coverage
// hooks when coverage is off: the nil check in Options.cover must be
// the whole story — no key composition, no site lookup, no counter
// touch. Every hook in the pass files calls cover with a bare op-name
// key for exactly this reason (see sites.go).
func TestDisabledCoverAddsNoAllocs(t *testing.T) {
	opts := &Options{}
	if n := testing.AllocsPerRun(200, func() {
		opts.cover(covCanonRewrite, "arith.addi")
		opts.cover(covToLLVM, "arith.cmpi")
	}); n != 0 {
		t.Fatalf("disabled coverage hook allocated %.1f times per run, want 0", n)
	}

	var nilOpts *Options
	if n := testing.AllocsPerRun(200, func() {
		nilOpts.cover(covPassRuns, "canonicalize")
	}); n != 0 {
		t.Fatalf("nil-Options coverage hook allocated %.1f times per run, want 0", n)
	}
}

// TestEnabledCoverHotPathAddsNoAllocs pins the enabled steady state:
// once a site's slot exists, further hits are a map lookup and a
// counter bump.
func TestEnabledCoverHotPathAddsNoAllocs(t *testing.T) {
	opts := &Options{Coverage: coverage.NewMap()}
	opts.cover(covCanonRewrite, "arith.muli") // warm the slot
	if n := testing.AllocsPerRun(200, func() {
		opts.cover(covCanonRewrite, "arith.muli")
	}); n != 0 {
		t.Fatalf("enabled coverage hot path allocated %.1f times per run, want 0", n)
	}
}
