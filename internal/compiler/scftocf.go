package compiler

import (
	"fmt"

	"ratte/internal/ir"
)

// runSCFToCF lowers structured control flow to branches between blocks,
// mirroring MLIR's convert-scf-to-cf: scf.if becomes a conditional
// branch diamond, scf.for becomes a header/body/continue loop with
// block arguments carrying the induction variable and loop-carried
// values.
//
// The pass repeatedly finds the first remaining scf op in any function
// block and splits that block around it, until none remain. Innermost
// regions are lowered first so that region bodies spliced into new
// blocks are already branch-based.
func runSCFToCF(m *ir.Module, opts *Options) error {
	for _, f := range funcsOf(m) {
		nm := newNamer(f)
		bn := newBlockNamer(f)
		for {
			changed, err := lowerOneSCF(f, nm, bn, opts)
			if err != nil {
				return err
			}
			if !changed {
				break
			}
		}
		// No scf op may survive in a fully lowered function.
		var leftover string
		f.Walk(func(op *ir.Operation) bool {
			if op.Dialect() == "scf" && op.Name != "scf.yield" {
				leftover = op.Name
				return false
			}
			return true
		})
		if leftover != "" {
			return fmt.Errorf("scf op %s not lowered", leftover)
		}
	}
	return nil
}

// lowerOneSCF finds the first scf.if/scf.for among the function
// region's top-level block operations and rewrites it. Operations
// nested inside an scf region surface as top-level block ops once
// their parent is lowered, so repeating until fixpoint lowers
// arbitrarily nested structured control flow, outermost first.
func lowerOneSCF(f *ir.Operation, nm *namer, bn *blockNamer, opts *Options) (bool, error) {
	region := f.Regions[0]
	for bi, b := range region.Blocks {
		for oi, op := range b.Ops {
			switch op.Name {
			case "scf.if":
				opts.cover(covSCFToCF, op.Name)
				return true, lowerIf(region, bi, oi, nm, bn)
			case "scf.for":
				opts.cover(covSCFToCF, op.Name)
				return true, lowerFor(region, bi, oi, nm, bn)
			}
		}
	}
	return false, nil
}

// lowerIf splits block bi of region at the scf.if at index oi:
//
//	^orig:  ...prefix..., cond_br %c, ^then, ^else
//	^then:  <then ops>, br ^cont(yielded...)
//	^else:  <else ops>, br ^cont(yielded...)
//	^cont(%results...): ...suffix...
func lowerIf(region *ir.Region, bi, oi int, nm *namer, bn *blockNamer) error {
	b := region.Blocks[bi]
	op := b.Ops[oi]
	suffix := b.Ops[oi+1:]
	prefix := b.Ops[:oi]

	thenLabel := bn.Fresh("then")
	elseLabel := bn.Fresh("else")
	contLabel := bn.Fresh("cont")

	// Continue block: takes the scf.if results as block arguments.
	contArgs := make([]ir.Value, len(op.Results))
	copy(contArgs, op.Results)
	contBlock := &ir.Block{Label: contLabel, Args: contArgs, Ops: suffix}

	mkBranchBlock := func(label string, r *ir.Region) (*ir.Block, error) {
		entry := r.Entry()
		if entry == nil {
			return nil, fmt.Errorf("scf.if region has no entry block")
		}
		ops := entry.Ops
		term := ops[len(ops)-1]
		if term.Name != "scf.yield" {
			return nil, fmt.Errorf("scf.if region must end in scf.yield, found %s", term.Name)
		}
		br := ir.NewOp("cf.br")
		br.Successors = []ir.Successor{{Block: contLabel, Args: append([]ir.Value(nil), term.Operands...)}}
		return &ir.Block{Label: label, Ops: append(ops[:len(ops)-1:len(ops)-1], br)}, nil
	}

	thenBlock, err := mkBranchBlock(thenLabel, op.Regions[0])
	if err != nil {
		return err
	}
	elseBlock, err := mkBranchBlock(elseLabel, op.Regions[1])
	if err != nil {
		return err
	}

	condBr := ir.NewOp("cf.cond_br")
	condBr.Operands = []ir.Value{op.Operands[0]}
	condBr.Successors = []ir.Successor{{Block: thenLabel}, {Block: elseLabel}}
	b.Ops = append(prefix[:len(prefix):len(prefix)], condBr)

	// Splice the new blocks after the split block.
	rest := append([]*ir.Block{thenBlock, elseBlock, contBlock}, region.Blocks[bi+1:]...)
	region.Blocks = append(region.Blocks[:bi+1:bi+1], rest...)
	return nil
}

// lowerFor splits block bi of region at the scf.for at index oi:
//
//	^orig:    ...prefix..., br ^header(lb, inits...)
//	^header(%iv, %carried...):
//	          %cond = cmpi slt %iv, %ub
//	          cond_br %cond, ^body(%iv, %carried...), ^cont(%carried...)
//	^body(%iv2, %c2...): <body ops>, %next = addi %iv2, %step,
//	          br ^header(%next, yielded...)
//	^cont(%results...): ...suffix...
func lowerFor(region *ir.Region, bi, oi int, nm *namer, bn *blockNamer) error {
	b := region.Blocks[bi]
	op := b.Ops[oi]
	suffix := b.Ops[oi+1:]
	prefix := b.Ops[:oi]

	lb, ub, step := op.Operands[0], op.Operands[1], op.Operands[2]
	inits := op.Operands[3:]

	headerLabel := bn.Fresh("header")
	bodyLabel := bn.Fresh("body")
	contLabel := bn.Fresh("cont")

	entry := op.Regions[0].Entry()
	if entry == nil {
		return fmt.Errorf("scf.for body has no entry block")
	}
	bodyOps := entry.Ops
	term := bodyOps[len(bodyOps)-1]
	if term.Name != "scf.yield" {
		return fmt.Errorf("scf.for body must end in scf.yield, found %s", term.Name)
	}

	// Header block arguments: fresh iv + carried values mirroring the
	// body entry arguments' types.
	hIV := nm.Value(ir.Index)
	hCarried := make([]ir.Value, len(inits))
	for i, init := range inits {
		hCarried[i] = nm.Value(init.Type)
	}

	headerArgs := append([]ir.Value{hIV}, hCarried...)
	cond := nm.Value(ir.I1)
	cmp := ir.NewOp("arith.cmpi")
	cmp.Operands = []ir.Value{hIV, ub}
	cmp.Attrs.Set("predicate", ir.IntAttr(2, ir.I64)) // slt
	cmp.Results = []ir.Value{cond}

	condBr := ir.NewOp("cf.cond_br")
	condBr.Operands = []ir.Value{cond}
	condBr.Successors = []ir.Successor{
		{Block: bodyLabel, Args: append([]ir.Value{hIV}, hCarried...)},
		{Block: contLabel, Args: append([]ir.Value(nil), hCarried...)},
	}
	headerBlock := &ir.Block{Label: headerLabel, Args: headerArgs, Ops: []*ir.Operation{cmp, condBr}}

	// Body block: reuse the region's entry arguments (iv + carried).
	next := nm.Value(ir.Index)
	inc := ir.NewOp("arith.addi")
	inc.Operands = []ir.Value{entry.Args[0], step}
	inc.Results = []ir.Value{next}
	backBr := ir.NewOp("cf.br")
	backBr.Successors = []ir.Successor{{
		Block: headerLabel,
		Args:  append([]ir.Value{next}, term.Operands...),
	}}
	bodyBlock := &ir.Block{
		Label: bodyLabel,
		Args:  entry.Args,
		Ops:   append(bodyOps[:len(bodyOps)-1:len(bodyOps)-1], inc, backBr),
	}

	// Continue block: takes the loop results.
	contArgs := make([]ir.Value, len(op.Results))
	copy(contArgs, op.Results)
	contBlock := &ir.Block{Label: contLabel, Args: contArgs, Ops: suffix}

	enterBr := ir.NewOp("cf.br")
	enterBr.Successors = []ir.Successor{{
		Block: headerLabel,
		Args:  append([]ir.Value{lb}, inits...),
	}}
	b.Ops = append(prefix[:len(prefix):len(prefix)], enterBr)

	rest := append([]*ir.Block{headerBlock, bodyBlock, contBlock}, region.Blocks[bi+1:]...)
	region.Blocks = append(region.Blocks[:bi+1:bi+1], rest...)
	return nil
}
