package compiler_test

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/gen"
	"ratte/internal/ir"
)

func mustSamplePlans(t *testing.T, preset string, n int, seed int64) []compiler.Plan {
	t.Helper()
	plans, err := compiler.SamplePlans(preset, n, seed)
	if err != nil {
		t.Fatalf("SamplePlans(%s, %d, %d): %v", preset, n, seed, err)
	}
	if len(plans) != n {
		t.Fatalf("SamplePlans(%s, %d, %d): %d plans", preset, n, seed, len(plans))
	}
	return plans
}

func TestSamplePlansDeterministic(t *testing.T) {
	for _, preset := range []string{"ariths", "linalggeneric"} {
		a := mustSamplePlans(t, preset, 32, 7)
		b := mustSamplePlans(t, preset, 32, 7)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different plan sets", preset)
		}
		c := mustSamplePlans(t, preset, 32, 8)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical plan sets", preset)
		}
		if compiler.PlanSetFingerprint(a) != compiler.PlanSetFingerprint(b) {
			t.Errorf("%s: set fingerprint not deterministic", preset)
		}
		if compiler.PlanSetFingerprint(a) == compiler.PlanSetFingerprint(c) {
			t.Errorf("%s: distinct sets share a fingerprint", preset)
		}
	}
}

func TestSamplePlansLegalAndSkeletonOrdered(t *testing.T) {
	for _, preset := range []string{"ariths", "linalggeneric", "tensor", "all"} {
		skel, err := compiler.PlanSkeleton(preset)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 20; seed++ {
			for _, p := range mustSamplePlans(t, preset, 16, seed) {
				if err := compiler.ValidatePlan(p); err != nil {
					t.Fatalf("%s seed %d: sampled illegal plan %v: %v", preset, seed, p.Passes, err)
				}
				// Mandatory stages present exactly once, in skeleton order.
				var got []string
				for _, name := range p.Passes {
					meta, ok := compiler.PassMetadata(name)
					if !ok {
						t.Fatalf("unregistered pass %q", name)
					}
					if meta.Mandatory {
						got = append(got, name)
					}
				}
				if !reflect.DeepEqual(got, skel) {
					t.Fatalf("%s seed %d: mandatory stages %v, want %v", preset, seed, got, skel)
				}
			}
		}
	}
}

func TestSamplePlansFirstIsSkeleton(t *testing.T) {
	plans := mustSamplePlans(t, "ariths", 4, 99)
	skel, _ := compiler.PlanSkeleton("ariths")
	if !reflect.DeepEqual(plans[0].Passes, skel) {
		t.Errorf("plan 0 = %v, want bare skeleton %v", plans[0].Passes, skel)
	}
}

func TestSamplePlansDistinct(t *testing.T) {
	plans := mustSamplePlans(t, "ariths", 64, 3)
	seen := make(map[uint64]bool)
	for _, p := range plans {
		fp := p.Fingerprint()
		if seen[fp] {
			t.Fatalf("duplicate plan %v in sampled set", p.Passes)
		}
		seen[fp] = true
	}
}

func TestPlanTreeNodesBound(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		plans := mustSamplePlans(t, "ariths", 16, seed)
		sum := 0
		for _, p := range plans {
			sum += len(p.Passes)
		}
		nodes := compiler.PlanTreeNodes(plans)
		if nodes > sum {
			t.Fatalf("seed %d: tree nodes %d > sum of plan lengths %d", seed, nodes, sum)
		}
		if nodes < len(plans[0].Passes) {
			t.Fatalf("seed %d: tree nodes %d below a single plan's length", seed, nodes)
		}
	}
}

// TestSamplePlansDistribution is the coverage smoke test: every
// optional pass must show up somewhere within 10k sampled plans
// (drawn as campaign-sized sets across seeds, the way campaigns
// actually sample).
func TestSamplePlansDistribution(t *testing.T) {
	seen := make(map[string]bool)
	for seed := int64(0); seed < 100; seed++ {
		for _, p := range mustSamplePlans(t, "ariths", 100, seed) {
			for _, name := range p.Passes {
				seen[name] = true
			}
		}
	}
	for _, name := range compiler.OptionalPasses("ariths") {
		if !seen[name] {
			t.Errorf("optional pass %q never sampled in 10k plans", name)
		}
	}
}

func TestSamplePlansConcurrent(t *testing.T) {
	// The sampler must be callable from concurrent campaign workers;
	// run it under -race from several goroutines.
	var wg sync.WaitGroup
	out := make([][]compiler.Plan, 8)
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = mustSamplePlans(t, "ariths", 16, 42)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(out); i++ {
		if !reflect.DeepEqual(out[0], out[i]) {
			t.Fatalf("concurrent sampling diverged at goroutine %d", i)
		}
	}
}

func TestValidatePlanRejectsIllegal(t *testing.T) {
	skel, _ := compiler.PlanSkeleton("ariths")
	legal := compiler.Plan{Preset: "ariths", Passes: skel}
	if err := compiler.ValidatePlan(legal); err != nil {
		t.Fatalf("skeleton plan rejected: %v", err)
	}
	cases := []struct {
		name   string
		plan   compiler.Plan
		substr string
	}{
		{"unknown pass", compiler.Plan{Preset: "ariths",
			Passes: append([]string{"mem2reg"}, skel...)}, "unknown pass"},
		{"unknown preset", compiler.Plan{Preset: "nope", Passes: skel}, "unknown preset"},
		{"missing stage", compiler.Plan{Preset: "ariths", Passes: skel[:3]}, "missing"},
		{"misordered stages", compiler.Plan{Preset: "ariths",
			Passes: []string{"convert-arith-to-llvm", "convert-scf-to-cf", "convert-vector-to-llvm", "convert-func-to-llvm"}},
			"requires"},
		{"duplicate stage", compiler.Plan{Preset: "ariths",
			Passes: append(append([]string(nil), skel...), "convert-func-to-llvm")}, "more than once"},
		{"expand after lowering", compiler.Plan{Preset: "ariths",
			Passes: []string{"convert-scf-to-cf", "convert-arith-to-llvm", "arith-expand", "convert-vector-to-llvm", "convert-func-to-llvm"}},
			"illegal after"},
		{"over max occurrence", compiler.Plan{Preset: "ariths",
			Passes: append([]string{"cse", "cse", "cse"}, skel...)}, "more than"},
		{"tensor stage in scalar preset", compiler.Plan{Preset: "ariths",
			Passes: append([]string{"one-shot-bufferize", "convert-linalg-to-loops"}, skel...)},
			"not part of"},
		{"split fused pair", compiler.Plan{Preset: "linalggeneric",
			Passes: []string{"one-shot-bufferize", "canonicalize", "convert-linalg-to-loops", "convert-scf-to-cf", "convert-arith-to-llvm", "convert-vector-to-llvm", "convert-func-to-llvm"}},
			"immediately followed"},
		{"expand before linalg lowering", compiler.Plan{Preset: "linalggeneric",
			Passes: []string{"arith-expand", "one-shot-bufferize", "convert-linalg-to-loops", "convert-scf-to-cf", "convert-arith-to-llvm", "convert-vector-to-llvm", "convert-func-to-llvm"}},
			"requires"},
	}
	for _, tc := range cases {
		err := compiler.ValidatePlan(tc.plan)
		if err == nil {
			t.Errorf("%s: illegal plan accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.substr)
		}
	}
}

// TestValidatePlanRejectsMutations mutates sampled legal plans along
// each constraint axis and asserts the lint always fires.
func TestValidatePlanRejectsMutations(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, p := range mustSamplePlans(t, "linalggeneric", 8, seed) {
			// Drop a mandatory stage.
			for i, name := range p.Passes {
				meta, _ := compiler.PassMetadata(name)
				if !meta.Mandatory {
					continue
				}
				mut := compiler.Plan{Preset: p.Preset}
				mut.Passes = append(mut.Passes, p.Passes[:i]...)
				mut.Passes = append(mut.Passes, p.Passes[i+1:]...)
				if compiler.ValidatePlan(mut) == nil {
					t.Fatalf("dropping mandatory %q from %v accepted", name, p.Passes)
				}
			}
			// Swap adjacent mandatory stages.
			for i := 0; i+1 < len(p.Passes); i++ {
				ma, _ := compiler.PassMetadata(p.Passes[i])
				mb, _ := compiler.PassMetadata(p.Passes[i+1])
				if !ma.Mandatory || !mb.Mandatory {
					continue
				}
				mut := compiler.Plan{Preset: p.Preset, Passes: append([]string(nil), p.Passes...)}
				mut.Passes[i], mut.Passes[i+1] = mut.Passes[i+1], mut.Passes[i]
				if compiler.ValidatePlan(mut) == nil {
					t.Fatalf("swapping %q and %q in %v accepted", p.Passes[i], p.Passes[i+1], p.Passes)
				}
			}
		}
	}
}

// TestCompilePlansMatchesSequential pins the prefix-tree sharing core:
// compiling a module under N sampled plans at once must produce the
// byte-identical lowered module each plan produces when run alone.
func TestCompilePlansMatchesSequential(t *testing.T) {
	for _, preset := range []string{"ariths", "linalggeneric"} {
		prog, err := gen.Generate(gen.Config{Preset: preset, Size: 20, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		plans := mustSamplePlans(t, preset, 12, 5)
		shared := compiler.CompilePlans(prog.Module, plans, bugs.None())
		for i, p := range plans {
			pipe, err := compiler.NewPipeline(p.Passes...)
			if err != nil {
				t.Fatal(err)
			}
			alone := prog.Module.Clone()
			if err := pipe.Run(alone, &compiler.Options{}); err != nil {
				t.Fatalf("%s plan %d (%s): solo compile: %v", preset, i, p, err)
			}
			if shared[i].Err != nil {
				t.Fatalf("%s plan %d (%s): shared compile: %v", preset, i, p, shared[i].Err)
			}
			if got, want := ir.Print(shared[i].Module), ir.Print(alone); got != want {
				t.Fatalf("%s plan %d (%s): shared and solo lowering differ", preset, i, p)
			}
		}
	}
}

func TestShrinkPlan(t *testing.T) {
	skel, _ := compiler.PlanSkeleton("ariths")
	p := compiler.Plan{Preset: "ariths", Passes: []string{
		"canonicalize", "canonicalize", "cse",
		"arith-expand", "convert-scf-to-cf", "cse", "convert-arith-to-llvm",
		"convert-vector-to-llvm", "remove-dead-values", "convert-func-to-llvm",
	}}
	if err := compiler.ValidatePlan(p); err != nil {
		t.Fatalf("test fixture plan illegal: %v", err)
	}
	// Property: the plan still contains arith-expand. Everything else
	// must shrink away.
	keep := func(c compiler.Plan) bool {
		for _, n := range c.Passes {
			if n == "arith-expand" {
				return true
			}
		}
		return false
	}
	min := compiler.ShrinkPlan(p, keep)
	if err := compiler.ValidatePlan(min); err != nil {
		t.Fatalf("shrunk plan illegal: %v", err)
	}
	want := append([]string{"arith-expand"}, skel...)
	if !reflect.DeepEqual(min.Passes, want) {
		t.Errorf("shrunk to %v, want %v", min.Passes, want)
	}
	// A property nothing optional satisfies shrinks to the skeleton.
	bare := compiler.ShrinkPlan(p, func(compiler.Plan) bool { return true })
	if !reflect.DeepEqual(bare.Passes, skel) {
		t.Errorf("unconstrained shrink %v, want skeleton %v", bare.Passes, skel)
	}
}

func TestPlanKeyDistinguishesSameName(t *testing.T) {
	skel, _ := compiler.PlanSkeleton("ariths")
	a := compiler.Plan{Preset: "ariths", Passes: append([]string{"cse"}, skel...)}
	b := compiler.Plan{Preset: "ariths", Passes: append([]string{"canonicalize"}, skel...)}
	if a.Name() != b.Name() {
		t.Fatalf("fixture plans should share a display name: %s vs %s", a.Name(), b.Name())
	}
	if a.Key() == b.Key() {
		t.Errorf("distinct plans share key %s", a.Key())
	}
}
