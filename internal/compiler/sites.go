// Coverage site families of the compiler: one Keyed family per
// pass×event kind, keyed by the op name (or branch label) the event
// applies to. Families are package-level so site registration happens
// once per process; per-compilation cost is one nil check per site
// when coverage is off and one map lookup + counter bump when on.
//
// Naming convention (see docs/EXTENDING.md §9):
//
//	compiler/pass/<pass>               one hit per pass execution
//	compiler/<pass>/rewrite/<op>       a rewrite pattern fired on <op>
//	compiler/<pass>/decline/<op>       a legality branch declined <op>
//	compiler/<pass>/fail/<op>          a legalization failure on <op>
package compiler

import "ratte/internal/coverage"

var (
	// covPassRuns counts pass executions by pass name.
	covPassRuns = coverage.NewKeyed("compiler/pass")

	// canonicalize: constant folds / pattern rewrites by root op, plus
	// the UB legality branch that declines a fold (divide by zero,
	// overflow) and the DCE sweep's removals.
	covCanonRewrite = coverage.NewKeyed("compiler/canonicalize/rewrite")
	covCanonDecline = coverage.NewKeyed("compiler/canonicalize/decline")
	covCanonDCE     = coverage.NewKeyed("compiler/canonicalize/dce")

	// cse: deduplicated ops by op name.
	covCSEDedup = coverage.NewKeyed("compiler/cse/rewrite")

	// remove-dead-values: dead ops removed, dead functions dropped.
	covDeadRemove = coverage.NewKeyed("compiler/remove-dead-values/rewrite")

	// arith-expand: rewrites by op, constant folds by op (a separate
	// family so the key stays the bare op name — composing keys with
	// string concatenation would allocate even when coverage is off),
	// plus the UB legality branch that declines folding a constant
	// division.
	covExpandRewrite = coverage.NewKeyed("compiler/arith-expand/rewrite")
	covExpandFold    = coverage.NewKeyed("compiler/arith-expand/fold")
	covExpandDecline = coverage.NewKeyed("compiler/arith-expand/decline")

	// one-shot-bufferize / convert-linalg-to-loops: conversions by op.
	covBufferize   = coverage.NewKeyed("compiler/one-shot-bufferize/rewrite")
	covLinalgLoops = coverage.NewKeyed("compiler/convert-linalg-to-loops/rewrite")

	// convert-scf-to-cf: structured-control-flow lowerings by op.
	covSCFToCF = coverage.NewKeyed("compiler/convert-scf-to-cf/rewrite")

	// convert-*-to-llvm: conversions by op, plus legalization failures
	// (the target-legality branch; bug 4 widens it).
	covToLLVM     = coverage.NewKeyed("compiler/convert-to-llvm/rewrite")
	covToLLVMFail = coverage.NewKeyed("compiler/convert-to-llvm/fail")
)
