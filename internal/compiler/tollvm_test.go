package compiler_test

import (
	"fmt"
	"testing"

	"ratte/internal/compiler"
	"ratte/internal/dialects"
	"ratte/internal/ir"
)

// runLoweredScalar compiles a two-operand scalar expression through the
// llvm conversion chain (no arith-expand) and executes it.
func runLoweredScalar(t *testing.T, opName, ty string, a, b int64) string {
	t.Helper()
	src := fmt.Sprintf(`"builtin.module"() ({
  "func.func"() ({
    %%a, %%b = "func.call"() {callee = @c} : () -> (%[2]s, %[2]s)
    %%r = "%[1]s"(%%a, %%b) : (%[2]s, %[2]s) -> (%[2]s)
    "vector.print"(%%r) : (%[2]s) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %%a = "arith.constant"() {value = %[3]d : %[2]s} : () -> (%[2]s)
    %%b = "arith.constant"() {value = %[4]d : %[2]s} : () -> (%[2]s)
    "func.return"(%%a, %%b) : (%[2]s, %[2]s) -> ()
  }) {sym_name = "c", function_type = () -> (%[2]s, %[2]s)} : () -> ()
}) : () -> ()`, opName, ty, a, b)
	m := mustParse(t, src)
	pipe, err := compiler.NewPipeline("convert-scf-to-cf", "convert-arith-to-llvm", "convert-vector-to-llvm", "convert-func-to-llvm")
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Run(m, &compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := dialects.NewExecutor().Run(m, "main")
	if err != nil {
		t.Fatalf("%s: %v", opName, err)
	}
	return res.Output
}

// TestDirectConversionsAgreeWithReference drives each multi-op llvm
// conversion (min/max via cmp+select, rounded divisions, the extended
// arithmetic) on hand-picked operands and compares with the reference
// value.
func TestDirectConversionsAgreeWithReference(t *testing.T) {
	cases := []struct {
		op   string
		ty   string
		a, b int64
		want string
	}{
		{"arith.maxsi", "i64", -3, 2, "2\n"},
		{"arith.minsi", "i64", -3, 2, "-3\n"},
		{"arith.maxui", "i8", -3, 2, "-3\n"}, // 253 unsigned wins, prints signed
		{"arith.minui", "i8", -3, 2, "2\n"},
		{"arith.ceildivsi", "i64", -7, 2, "-3\n"},
		{"arith.ceildivsi", "i64", 7, 2, "4\n"},
		{"arith.ceildivsi", "i64", -7, -2, "4\n"},
		{"arith.floordivsi", "i64", -7, 2, "-4\n"},
		{"arith.floordivsi", "i64", 7, -2, "-4\n"},
		{"arith.ceildivui", "i8", 7, 2, "4\n"},
		{"arith.ceildivui", "i8", 0, 3, "0\n"},
	}
	for _, c := range cases {
		got := runLoweredScalar(t, c.op, c.ty, c.a, c.b)
		if got != c.want {
			t.Errorf("%s(%d, %d) lowered to %q, want %q", c.op, c.a, c.b, got, c.want)
		}
	}
}

// TestExtendedConversionShapes pins the llvm sequences for the
// extended-arithmetic conversions: mul/smulh, mul/umulh, add+icmp-ult.
func TestExtendedConversionShapes(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
  ^bb0(%a: i8, %b: i8):
    %lo, %hi = "arith.mulsi_extended"(%a, %b) : (i8, i8) -> (i8, i8)
    %lo2, %hi2 = "arith.mului_extended"(%a, %b) : (i8, i8) -> (i8, i8)
    %s, %o = "arith.addui_extended"(%a, %b) : (i8, i8) -> (i8, i1)
    "func.return"(%hi, %hi2, %o) : (i8, i8, i1) -> ()
  }) {sym_name = "main", function_type = (i8, i8) -> (i8, i8, i1)} : () -> ()
}) : () -> ()`
	m := mustParse(t, src)
	pipe, _ := compiler.NewPipeline("convert-arith-to-llvm")
	if err := pipe.Run(m, &compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	m.Walk(func(op *ir.Operation) bool {
		counts[op.Name]++
		return true
	})
	if counts["llvm.smulh"] != 1 || counts["llvm.umulh"] != 1 {
		t.Errorf("high-multiply conversions wrong: %v", counts)
	}
	if counts["llvm.icmp"] != 1 {
		t.Errorf("addui_extended should lower its flag to one icmp: %v", counts)
	}
	if counts["llvm.mul"] != 2 {
		t.Errorf("expected 2 llvm.mul (low halves): %v", counts)
	}
	for name := range counts {
		if name == "arith.mulsi_extended" || name == "arith.mului_extended" || name == "arith.addui_extended" {
			t.Errorf("%s survived conversion", name)
		}
	}
}

// TestConversionRejectsLeftoverTensorConstant: a dense constant
// reaching convert-arith-to-llvm (i.e. bufferisation skipped) is a
// structured pipeline error, not silent miscompilation.
func TestConversionRejectsLeftoverTensorConstant(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %t = "arith.constant"() {value = dense<[1]> : tensor<1xi64>} : () -> (tensor<1xi64>)
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m := mustParse(t, src)
	pipe, _ := compiler.NewPipeline("convert-arith-to-llvm")
	if err := pipe.Run(m, &compiler.Options{}); err == nil {
		t.Error("dense constant must not silently pass the llvm conversion")
	}
}
