// Package compiler is the system under test: a multi-level pass-pipeline
// compiler over Ratte's IR, structurally mirroring the production MLIR
// stack the paper fuzzes — a frontend verifier, optimisation passes
// (canonicalize, cse, remove-dead-values) that do not change the
// abstraction level, and lowering passes (arith-expand, bufferisation,
// linalg-to-loops, scf-to-cf, the convert-*-to-llvm family) that take
// the module down to the executable llvm target dialect.
//
// Every pass accepts an Options carrying the set of injected bugs
// (package bugs); with the empty set the compiler is intended to be
// correct, and the differential test-suite asserts it is.
package compiler

import (
	"fmt"
	"io"
	"strings"

	"ratte/internal/bugs"
	"ratte/internal/dialects"
	"ratte/internal/ir"
	"ratte/internal/verify"
)

// Options configures a compilation.
type Options struct {
	// Bugs selects which injected defects are active.
	Bugs bugs.Set
	// VerifyBetweenPasses re-runs the verifier after every pass,
	// catching passes that produce invalid IR.
	VerifyBetweenPasses bool
	// PrintAfterAll, when non-nil, receives the module's textual form
	// after every pass (the -print-ir-after-all debugging workflow).
	PrintAfterAll io.Writer
}

// Pass transforms a module in place.
type Pass interface {
	Name() string
	Run(m *ir.Module, opts *Options) error
}

// passFunc adapts a function to the Pass interface.
type passFunc struct {
	name string
	run  func(m *ir.Module, opts *Options) error
}

func (p passFunc) Name() string                          { return p.name }
func (p passFunc) Run(m *ir.Module, opts *Options) error { return p.run(m, opts) }
func newPass(name string, run func(*ir.Module, *Options) error) Pass {
	return passFunc{name: name, run: run}
}

// PassError reports which pass failed; a PassError from a pipeline is a
// compile-time rejection of the program.
type PassError struct {
	Pass string
	Err  error
}

func (e *PassError) Error() string { return "pass " + e.Pass + ": " + e.Err.Error() }
func (e *PassError) Unwrap() error { return e.Err }

// registry maps pass names (the mlir-opt flag spelling) to constructors.
var registry = map[string]func() Pass{
	"canonicalize":            func() Pass { return newPass("canonicalize", runCanonicalize) },
	"cse":                     func() Pass { return newPass("cse", runCSE) },
	"remove-dead-values":      func() Pass { return newPass("remove-dead-values", runRemoveDeadValues) },
	"arith-expand":            func() Pass { return newPass("arith-expand", runArithExpand) },
	"one-shot-bufferize":      func() Pass { return newPass("one-shot-bufferize", runBufferize) },
	"convert-linalg-to-loops": func() Pass { return newPass("convert-linalg-to-loops", runLinalgToLoops) },
	"convert-scf-to-cf":       func() Pass { return newPass("convert-scf-to-cf", runSCFToCF) },
	"convert-arith-to-llvm":   func() Pass { return newPass("convert-arith-to-llvm", runArithToLLVM) },
	"convert-vector-to-llvm":  func() Pass { return newPass("convert-vector-to-llvm", runVectorToLLVM) },
	"convert-func-to-llvm":    func() Pass { return newPass("convert-func-to-llvm", runFuncToLLVM) },
}

// PassNames returns the registered pass names.
func PassNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	return names
}

// Pipeline is an ordered list of passes.
type Pipeline struct {
	passes []Pass
}

// NewPipeline resolves pass names into a pipeline. Names follow the
// mlir-opt flag spelling, e.g. "arith-expand".
func NewPipeline(names ...string) (*Pipeline, error) {
	p := &Pipeline{}
	for _, n := range names {
		mk, ok := registry[strings.TrimPrefix(n, "-")]
		if !ok {
			return nil, fmt.Errorf("compiler: unknown pass %q", n)
		}
		p.passes = append(p.passes, mk())
	}
	return p, nil
}

// Names returns the pipeline's pass names in order.
func (p *Pipeline) Names() []string {
	ns := make([]string, len(p.passes))
	for i, pass := range p.passes {
		ns[i] = pass.Name()
	}
	return ns
}

// Run executes the pipeline on a module in place. The input module must
// already have been verified by the caller (Compile does this).
func (p *Pipeline) Run(m *ir.Module, opts *Options) error {
	if opts == nil {
		opts = &Options{}
	}
	for _, pass := range p.passes {
		if err := pass.Run(m, opts); err != nil {
			return &PassError{Pass: pass.Name(), Err: err}
		}
		if opts.PrintAfterAll != nil {
			fmt.Fprintf(opts.PrintAfterAll, "// ----- IR after %s -----\n%s\n", pass.Name(), ir.Print(m))
		}
		if opts.VerifyBetweenPasses {
			if err := verify.Module(m, dialects.AllSpecs()); err != nil {
				return &PassError{Pass: pass.Name(), Err: fmt.Errorf("pass produced invalid IR: %w", err)}
			}
		}
	}
	return nil
}

// OptLevel selects how many optimisation passes run before lowering,
// the axis the DT-O (differential-across-optimisation-levels) oracle
// varies. Lowering passes run at every level — which is precisely why
// DT-O cannot see lowering bugs.
type OptLevel int

// The supported optimisation levels.
const (
	O0 OptLevel = 0 // lowering only
	O1 OptLevel = 1 // canonicalize + cse before lowering
	O2 OptLevel = 2 // O1 plus remove-dead-values and a second canonicalize
)

// OptLevels lists all levels, for DT-O sweeps.
var OptLevels = []OptLevel{O0, O1, O2}

// PipelineFor builds the pass list for a generator preset (paper
// Table 2 / Appendix A.5.4) at the given optimisation level.
//
// Presets: "ariths" programs use {arith, scf, func, vector};
// "linalggeneric" adds linalg and tensor; "tensor" uses tensor-heavy
// programs. All pipelines target the executable llvm level.
func PipelineFor(preset string, level OptLevel) ([]string, error) {
	return PipelineForConfig(preset, level, false)
}

// PipelineForConfig additionally selects the lowering strategy:
// skipExpand omits arith-expand, leaving the rounded divisions to
// convert-arith-to-llvm's direct conversion patterns — the second
// lowering path production MLIR offers (and where the paper's bug 6
// lives). Both strategies run the lowering at every optimisation
// level, which is why cross-optimisation-level testing (DT-O) cannot
// observe lowering defects.
func PipelineForConfig(preset string, level OptLevel, skipExpand bool) ([]string, error) {
	var opt []string
	switch level {
	case O0:
	case O1:
		opt = []string{"canonicalize", "cse"}
	case O2:
		opt = []string{"canonicalize", "cse", "remove-dead-values", "canonicalize"}
	default:
		return nil, fmt.Errorf("compiler: unknown optimisation level %d", int(level))
	}
	lowerScalar := []string{"arith-expand", "convert-scf-to-cf", "convert-arith-to-llvm", "convert-vector-to-llvm", "convert-func-to-llvm"}
	if skipExpand {
		lowerScalar = lowerScalar[1:]
	}
	lowerTensor := append([]string{"one-shot-bufferize", "convert-linalg-to-loops"}, lowerScalar...)
	switch preset {
	case "ariths":
		return append(opt, lowerScalar...), nil
	case "linalggeneric", "tensor", "all":
		return append(opt, lowerTensor...), nil
	}
	return nil, fmt.Errorf("compiler: unknown preset %q", preset)
}

// Compiler compiles source-level modules down to the llvm target level,
// the way the paper's experiments drive mlir-opt.
type Compiler struct {
	// Bugs selects the injected defects active in this compiler build.
	Bugs bugs.Set
	// Level is the optimisation level.
	Level OptLevel
	// SkipArithExpand selects the alternative lowering strategy that
	// relies on convert-arith-to-llvm's direct division conversions.
	SkipArithExpand bool
	// VerifyBetweenPasses enables inter-pass verification.
	VerifyBetweenPasses bool
}

// Compile verifies m against the source dialect rules, runs the preset's
// pipeline at the configured level, and returns the lowered module. The
// input module is not modified. A returned error is a compile-time
// rejection (frontend verification failure or pass failure).
func (c *Compiler) Compile(m *ir.Module, preset string) (*ir.Module, error) {
	if err := verify.Module(m, dialects.SourceSpecs()); err != nil {
		return nil, err
	}
	names, err := PipelineForConfig(preset, c.Level, c.SkipArithExpand)
	if err != nil {
		return nil, err
	}
	pipe, err := NewPipeline(names...)
	if err != nil {
		return nil, err
	}
	out := m.Clone()
	opts := &Options{Bugs: c.Bugs, VerifyBetweenPasses: c.VerifyBetweenPasses}
	if err := pipe.Run(out, opts); err != nil {
		return nil, err
	}
	return out, nil
}
