// Package compiler is the system under test: a multi-level pass-pipeline
// compiler over Ratte's IR, structurally mirroring the production MLIR
// stack the paper fuzzes — a frontend verifier, optimisation passes
// (canonicalize, cse, remove-dead-values) that do not change the
// abstraction level, and lowering passes (arith-expand, bufferisation,
// linalg-to-loops, scf-to-cf, the convert-*-to-llvm family) that take
// the module down to the executable llvm target dialect.
//
// Every pass accepts an Options carrying the set of injected bugs
// (package bugs); with the empty set the compiler is intended to be
// correct, and the differential test-suite asserts it is.
package compiler

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"ratte/internal/bugs"
	"ratte/internal/coverage"
	"ratte/internal/dialects"
	"ratte/internal/faultinject"
	"ratte/internal/ir"
	"ratte/internal/verify"
)

// Options configures a compilation.
type Options struct {
	// Bugs selects which injected defects are active.
	Bugs bugs.Set
	// VerifyBetweenPasses re-runs the verifier after every pass,
	// catching passes that produce invalid IR.
	VerifyBetweenPasses bool
	// PrintAfterAll, when non-nil, receives the module's textual form
	// after every pass (the -print-ir-after-all debugging workflow).
	PrintAfterAll io.Writer
	// Ctx, when non-nil, is checked between passes: a cancelled or
	// expired context stops the pipeline with an error wrapping
	// Ctx.Err(), which is how the campaign engine enforces per-program
	// wall-clock budgets over compilation.
	Ctx context.Context
	// Faults, when non-nil, is the deterministic fault-injection layer
	// (sites compiler/pass and compiler/registry); production
	// compilations leave it nil and pay only a nil check.
	Faults *faultinject.Injector
	// SkipVerify omits the frontend verification in CompileConfigsOpts
	// for callers that have already verified the module (the campaign
	// engine verifies in its own guarded stage).
	SkipVerify bool
	// Coverage, when non-nil, receives one hit per pass execution,
	// per pass×op-kind rewrite application and per legality branch —
	// the semantic-coverage channel (sites under "compiler/...").
	// Observation only: the compiled output is byte-identical with it
	// nil or set, and the nil path costs a single pointer check.
	Coverage *coverage.Map
}

// cover records one coverage hit in the family f under key when
// coverage is enabled. The nil check precedes the keyed lookup so the
// disabled path performs no map access and no allocation (the
// compiler alloc guard pins this).
func (o *Options) cover(f *coverage.Keyed, key string) {
	if o != nil && o.Coverage != nil {
		o.Coverage.Hit(f.Site(key))
	}
}

// Pass transforms a module in place.
type Pass interface {
	Name() string
	Run(m *ir.Module, opts *Options) error
}

// passFunc adapts a function to the Pass interface.
type passFunc struct {
	name string
	run  func(m *ir.Module, opts *Options) error
}

func (p passFunc) Name() string                          { return p.name }
func (p passFunc) Run(m *ir.Module, opts *Options) error { return p.run(m, opts) }
func newPass(name string, run func(*ir.Module, *Options) error) Pass {
	return passFunc{name: name, run: run}
}

// PassError reports which pass failed; a PassError from a pipeline is a
// compile-time rejection of the program.
type PassError struct {
	Pass string
	Err  error
}

func (e *PassError) Error() string { return "pass " + e.Pass + ": " + e.Err.Error() }
func (e *PassError) Unwrap() error { return e.Err }

// registry maps pass names (the mlir-opt flag spelling) to constructors.
var registry = map[string]func() Pass{
	"canonicalize":            func() Pass { return newPass("canonicalize", runCanonicalize) },
	"cse":                     func() Pass { return newPass("cse", runCSE) },
	"remove-dead-values":      func() Pass { return newPass("remove-dead-values", runRemoveDeadValues) },
	"arith-expand":            func() Pass { return newPass("arith-expand", runArithExpand) },
	"one-shot-bufferize":      func() Pass { return newPass("one-shot-bufferize", runBufferize) },
	"convert-linalg-to-loops": func() Pass { return newPass("convert-linalg-to-loops", runLinalgToLoops) },
	"convert-scf-to-cf":       func() Pass { return newPass("convert-scf-to-cf", runSCFToCF) },
	"convert-arith-to-llvm":   func() Pass { return newPass("convert-arith-to-llvm", runArithToLLVM) },
	"convert-vector-to-llvm":  func() Pass { return newPass("convert-vector-to-llvm", runVectorToLLVM) },
	"convert-func-to-llvm":    func() Pass { return newPass("convert-func-to-llvm", runFuncToLLVM) },
}

// PassNames returns the registered pass names.
func PassNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	return names
}

// Pipeline is an ordered list of passes.
type Pipeline struct {
	passes []Pass
}

// NewPipeline resolves pass names into a pipeline. Names follow the
// mlir-opt flag spelling, e.g. "arith-expand".
func NewPipeline(names ...string) (*Pipeline, error) {
	p := &Pipeline{}
	for _, n := range names {
		mk, ok := registry[strings.TrimPrefix(n, "-")]
		if !ok {
			return nil, fmt.Errorf("compiler: unknown pass %q", n)
		}
		p.passes = append(p.passes, mk())
	}
	return p, nil
}

// Names returns the pipeline's pass names in order.
func (p *Pipeline) Names() []string {
	ns := make([]string, len(p.passes))
	for i, pass := range p.passes {
		ns[i] = pass.Name()
	}
	return ns
}

// Run executes the pipeline on a module in place. The input module must
// already have been verified by the caller (Compile does this).
func (p *Pipeline) Run(m *ir.Module, opts *Options) error {
	if opts == nil {
		opts = &Options{}
	}
	for _, pass := range p.passes {
		if err := runPass(pass, m, opts); err != nil {
			return err
		}
	}
	return nil
}

// runPass executes one pass with the pipeline's error wrapping and the
// PrintAfterAll / VerifyBetweenPasses debugging hooks. The context
// check between passes is the pipeline's cooperative cancellation
// point: a pass runs to completion, but an expired per-program budget
// stops the pipeline before the next one starts.
func runPass(pass Pass, m *ir.Module, opts *Options) error {
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return &PassError{Pass: pass.Name(), Err: fmt.Errorf("compiler: cancelled: %w", err)}
		}
	}
	if opts.Faults != nil {
		if err := opts.Faults.Point(faultinject.SiteCompilerPass); err != nil {
			return &PassError{Pass: pass.Name(), Err: err}
		}
	}
	opts.cover(covPassRuns, pass.Name())
	if err := pass.Run(m, opts); err != nil {
		return &PassError{Pass: pass.Name(), Err: err}
	}
	if opts.PrintAfterAll != nil {
		fmt.Fprintf(opts.PrintAfterAll, "// ----- IR after %s -----\n%s\n", pass.Name(), ir.Print(m))
	}
	if opts.VerifyBetweenPasses {
		if err := verify.Module(m, dialects.AllSpecs()); err != nil {
			return &PassError{Pass: pass.Name(), Err: fmt.Errorf("pass produced invalid IR: %w", err)}
		}
	}
	return nil
}

// OptLevel selects how many optimisation passes run before lowering,
// the axis the DT-O (differential-across-optimisation-levels) oracle
// varies. Lowering passes run at every level — which is precisely why
// DT-O cannot see lowering bugs.
type OptLevel int

// The supported optimisation levels.
const (
	O0 OptLevel = 0 // lowering only
	O1 OptLevel = 1 // canonicalize + cse before lowering
	O2 OptLevel = 2 // O1 plus remove-dead-values and a second canonicalize
)

// OptLevels lists all levels, for DT-O sweeps.
var OptLevels = []OptLevel{O0, O1, O2}

// PipelineFor builds the pass list for a generator preset (paper
// Table 2 / Appendix A.5.4) at the given optimisation level.
//
// Presets: "ariths" programs use {arith, scf, func, vector};
// "linalggeneric" adds linalg and tensor; "tensor" uses tensor-heavy
// programs. All pipelines target the executable llvm level.
func PipelineFor(preset string, level OptLevel) ([]string, error) {
	return PipelineForConfig(preset, level, false)
}

// PipelineForConfig additionally selects the lowering strategy:
// skipExpand omits arith-expand, leaving the rounded divisions to
// convert-arith-to-llvm's direct conversion patterns — the second
// lowering path production MLIR offers (and where the paper's bug 6
// lives). Both strategies run the lowering at every optimisation
// level, which is why cross-optimisation-level testing (DT-O) cannot
// observe lowering defects.
func PipelineForConfig(preset string, level OptLevel, skipExpand bool) ([]string, error) {
	var opt []string
	switch level {
	case O0:
	case O1:
		opt = []string{"canonicalize", "cse"}
	case O2:
		opt = []string{"canonicalize", "cse", "remove-dead-values", "canonicalize"}
	default:
		return nil, fmt.Errorf("compiler: unknown optimisation level %d", int(level))
	}
	lowerScalar := []string{"arith-expand", "convert-scf-to-cf", "convert-arith-to-llvm", "convert-vector-to-llvm", "convert-func-to-llvm"}
	if skipExpand {
		lowerScalar = lowerScalar[1:]
	}
	lowerTensor := append([]string{"one-shot-bufferize", "convert-linalg-to-loops"}, lowerScalar...)
	switch preset {
	case "ariths":
		return append(opt, lowerScalar...), nil
	case "linalggeneric", "tensor", "all":
		return append(opt, lowerTensor...), nil
	}
	return nil, fmt.Errorf("compiler: unknown preset %q", preset)
}

// Config identifies one build configuration under differential test: an
// optimisation level plus a lowering strategy. The paper applies Ratte
// to several end-to-end compilations (§4.1); varying the lowering
// strategy is what reaches both homes of the ceildivsi defects
// (arith-expand and the direct convert-arith-to-llvm patterns).
type Config struct {
	Level           OptLevel
	SkipArithExpand bool
}

func (c Config) String() string {
	s := fmt.Sprintf("O%d", int(c.Level))
	if c.SkipArithExpand {
		s += "-noexpand"
	}
	return s
}

// pipelineKey indexes the memoized pipeline cache.
type pipelineKey struct {
	preset     string
	level      OptLevel
	skipExpand bool
}

var (
	pipelineCache sync.Map // pipelineKey -> *Pipeline

	// Pipeline-cache accounting, exported through PipelineCacheStats
	// so telemetry (and tests) can see memoization working without
	// reaching into the sync.Map.
	pipelineCacheHits   atomic.Uint64
	pipelineCacheMisses atomic.Uint64
)

// CachedPipeline returns the shared Pipeline for (preset, level,
// skipExpand), building it on first use. Pipelines hold only stateless
// pass functions, so one instance is safe to run from any number of
// goroutines; callers must not mutate the returned pipeline.
func CachedPipeline(preset string, level OptLevel, skipExpand bool) (*Pipeline, error) {
	key := pipelineKey{preset, level, skipExpand}
	if p, ok := pipelineCache.Load(key); ok {
		pipelineCacheHits.Add(1)
		return p.(*Pipeline), nil
	}
	names, err := PipelineForConfig(preset, level, skipExpand)
	if err != nil {
		return nil, err
	}
	pipe, err := NewPipeline(names...)
	if err != nil {
		return nil, err
	}
	pipelineCacheMisses.Add(1)
	p, loaded := pipelineCache.LoadOrStore(key, pipe)
	if loaded {
		// Another goroutine built it first; the build above was wasted
		// work but the lookup still resolved from the cache.
		pipelineCacheHits.Add(1)
	}
	return p.(*Pipeline), nil
}

// PipelineCacheStats reports the memoized pipeline cache's hit/miss
// counters and current size. Safe for concurrent use; the size walk
// takes the sync.Map's usual weakly-consistent snapshot.
func PipelineCacheStats() (hits, misses uint64, size int) {
	pipelineCache.Range(func(_, _ any) bool {
		size++
		return true
	})
	return pipelineCacheHits.Load(), pipelineCacheMisses.Load(), size
}

// ConfigResult is one configuration's outcome under CompileConfigs:
// either the lowered module or a compile-time rejection.
type ConfigResult struct {
	Module *ir.Module
	Err    error
}

// CompileConfigs compiles m under every given configuration of one
// (possibly bug-injected) compiler build, producing exactly the modules
// (or rejections) that per-configuration Compiler.Compile calls would,
// but sharing the work the configurations have in common:
//
//   - the frontend verification of m runs once, not once per config;
//   - the configurations' pass lists are arranged into a prefix tree
//     and each shared prefix (e.g. O1's canonicalize+cse, which is also
//     how O2 and O1-noexpand begin) runs once, with one module Clone
//     per divergence point instead of one full pipeline per config.
//
// Passes are deterministic module transforms (injected bugs included),
// so running a shared prefix once and forking is observationally
// identical to recompiling from scratch — which the difftest
// determinism suite asserts. The input module is not modified.
func CompileConfigs(m *ir.Module, preset string, bugSet bugs.Set, configs []Config) []ConfigResult {
	return CompileConfigsOpts(m, preset, &Options{Bugs: bugSet}, configs)
}

// CompileConfigsOpts is CompileConfigs with full Options control: the
// campaign engine uses it to thread its per-program context deadline
// and fault injector through every pass, and to skip the frontend
// verification it has already run in its own guarded stage.
func CompileConfigsOpts(m *ir.Module, preset string, opts *Options, configs []Config) []ConfigResult {
	if opts == nil {
		opts = &Options{}
	}
	results := make([]ConfigResult, len(configs))
	if !opts.SkipVerify {
		if err := verify.Module(m, dialects.SourceSpecs()); err != nil {
			for i := range results {
				results[i].Err = err
			}
			return results
		}
	}
	jobs := make([]treeJob, 0, len(configs))
	for i, c := range configs {
		names, err := PipelineForConfig(preset, c.Level, c.SkipArithExpand)
		if err != nil {
			results[i].Err = err
			continue
		}
		jobs = append(jobs, treeJob{idx: i, passes: names})
	}
	compileTree(m, jobs, opts, results)
	return results
}

// treeJob pairs one result slot with its full pass list; compileTree
// shares work across jobs by arranging the lists into a prefix tree.
type treeJob struct {
	idx    int
	passes []string
}

// compileTree runs every job's pass list over m and writes each job's
// lowered module (or first pass failure) into results[job.idx]. Jobs
// are arranged into a prefix tree: each shared prefix runs once, with
// one module Clone per divergence point instead of one full pipeline
// per job. Passes are deterministic module transforms (injected bugs
// included), so forking at divergence points is observationally
// identical to recompiling each job from scratch. m is not modified.
//
// This is the sharing core behind both CompileConfigsOpts (the four
// fixed build configurations) and CompilePlansOpts (N sampled plans).
func compileTree(m *ir.Module, jobs []treeJob, opts *Options, results []ConfigResult) {
	// rec runs the jobs' remaining passes over the prefix tree. owned
	// marks modules this call may mutate freely; the caller's module is
	// not owned, so every fork from it clones first.
	var rec func(m *ir.Module, jobs []treeJob, depth int, owned bool)
	rec = func(m *ir.Module, jobs []treeJob, depth int, owned bool) {
		var done []treeJob
		var order []string
		groups := make(map[string][]treeJob)
		for _, j := range jobs {
			if depth == len(j.passes) {
				done = append(done, j)
				continue
			}
			name := j.passes[depth]
			if _, ok := groups[name]; !ok {
				order = append(order, name)
			}
			groups[name] = append(groups[name], j)
		}
		if len(done) > 0 {
			dm := m
			if !owned || len(order) > 0 {
				dm = m.Clone()
			}
			results[done[0].idx].Module = dm
			for _, j := range done[1:] {
				// Distinct jobs with identical pipelines still get
				// independent modules, matching per-job compilation.
				results[j.idx].Module = dm.Clone()
			}
		}
		for i, name := range order {
			g := groups[name]
			gm := m
			if !(owned && i == len(order)-1) {
				gm = m.Clone()
			}
			if opts.Faults != nil {
				if err := opts.Faults.Point(faultinject.SiteCompilerRegistry); err != nil {
					for _, j := range g {
						results[j.idx].Err = &PassError{Pass: name, Err: err}
					}
					continue
				}
			}
			mk, ok := registry[name]
			if !ok {
				for _, j := range g {
					results[j.idx].Err = fmt.Errorf("compiler: unknown pass %q", name)
				}
				continue
			}
			if err := runPass(mk(), gm, opts); err != nil {
				for _, j := range g {
					results[j.idx].Err = err
				}
				continue
			}
			rec(gm, g, depth+1, true)
		}
	}
	rec(m, jobs, 0, false)
}

// Compiler compiles source-level modules down to the llvm target level,
// the way the paper's experiments drive mlir-opt.
type Compiler struct {
	// Bugs selects the injected defects active in this compiler build.
	Bugs bugs.Set
	// Level is the optimisation level.
	Level OptLevel
	// SkipArithExpand selects the alternative lowering strategy that
	// relies on convert-arith-to-llvm's direct division conversions.
	SkipArithExpand bool
	// VerifyBetweenPasses enables inter-pass verification.
	VerifyBetweenPasses bool
}

// Compile verifies m against the source dialect rules, runs the preset's
// pipeline at the configured level, and returns the lowered module. The
// input module is not modified. A returned error is a compile-time
// rejection (frontend verification failure or pass failure).
func (c *Compiler) Compile(m *ir.Module, preset string) (*ir.Module, error) {
	if err := verify.Module(m, dialects.SourceSpecs()); err != nil {
		return nil, err
	}
	pipe, err := CachedPipeline(preset, c.Level, c.SkipArithExpand)
	if err != nil {
		return nil, err
	}
	out := m.Clone()
	opts := &Options{Bugs: c.Bugs, VerifyBetweenPasses: c.VerifyBetweenPasses}
	if err := pipe.Run(out, opts); err != nil {
		return nil, err
	}
	return out, nil
}
