package compiler

import (
	"ratte/internal/bugs"
	"ratte/internal/ir"
	"ratte/internal/rtval"
)

// runCanonicalize applies constant folding, algebraic simplification and
// dead-code elimination until a fixpoint, per function. It hosts three
// of the paper's injected optimisation bugs (1, 2 and 5).
func runCanonicalize(m *ir.Module, opts *Options) error {
	for _, f := range funcsOf(m) {
		c := &canonicalizer{opts: opts, nm: newNamer(f), f: f}
		for iter := 0; iter < 8; iter++ {
			c.changed = false
			consts := constMap{}
			for _, r := range f.Regions {
				for _, b := range r.Blocks {
					c.block(b, consts)
				}
			}
			c.dce(f)
			if !c.changed {
				break
			}
		}
	}
	return nil
}

type canonicalizer struct {
	opts    *Options
	nm      *namer
	f       *ir.Operation // enclosing function, for use re-wiring
	changed bool

	// indexCastSrc records, for results of arith.index_cast from index
	// to an integer type, the original index-typed operand — the state
	// the (buggy) chain fold consults.
	indexCastSrc map[string]ir.Value
}

func (c *canonicalizer) block(b *ir.Block, consts constMap) {
	if c.indexCastSrc == nil {
		c.indexCastSrc = make(map[string]ir.Value)
	}
	var out []*ir.Operation
	for _, op := range b.Ops {
		// Canonicalize nested regions first (Standard scoping lets them
		// see the enclosing constants).
		for _, r := range op.Regions {
			for _, nb := range r.Blocks {
				c.block(nb, consts)
			}
		}
		replaced := c.visit(op, consts, &out)
		if replaced {
			c.opts.cover(covCanonRewrite, op.Name)
		} else {
			out = append(out, op)
			consts.record(op)
		}
	}
	b.Ops = out
}

// visit rewrites one operation. When it returns true the op has been
// replaced (replacement ops, if any, were appended to *out) and all
// uses re-wired.
func (c *canonicalizer) visit(op *ir.Operation, consts constMap, out *[]*ir.Operation) bool {
	switch op.Name {
	case "arith.addi", "arith.subi", "arith.muli",
		"arith.andi", "arith.ori", "arith.xori",
		"arith.maxsi", "arith.maxui", "arith.minsi", "arith.minui",
		"arith.divsi", "arith.divui", "arith.remsi", "arith.remui",
		"arith.ceildivsi", "arith.ceildivui", "arith.floordivsi",
		"arith.shli", "arith.shrsi", "arith.shrui":
		return c.visitBinary(op, consts, out)
	case "arith.cmpi":
		return c.visitCmpi(op, consts, out)
	case "arith.select":
		return c.visitSelect(op, consts)
	case "arith.extsi", "arith.extui", "arith.trunci":
		return c.visitCast(op, consts, out)
	case "arith.index_cast", "arith.index_castui":
		return c.visitIndexCast(op, consts, out)
	case "arith.mulsi_extended":
		return c.visitMulsiExtended(op, consts, out)
	case "arith.addui_extended":
		return c.visitAdduiExtended(op, consts, out)
	}
	return false
}

// constOf materialises the rtval for a constant attribute at type t.
func constVal(a ir.IntegerAttr, t ir.Type) rtval.Int {
	if _, isIdx := t.(ir.IndexType); isIdx {
		return rtval.NewIndex(a.Value)
	}
	w, _ := ir.BitWidth(t)
	return rtval.NewInt(w, a.Value)
}

// replaceWithConst replaces op's single result with a fresh constant.
func (c *canonicalizer) replaceWithConst(op *ir.Operation, v rtval.Int, out *[]*ir.Operation) {
	cst, res := buildConst(c.nm, v.Signed(), op.Results[0].Type)
	*out = append(*out, cst)
	c.replaceAllUses(op.Results[0].ID, res)
	c.changed = true
}

// replaceWithValue re-wires all uses of one result to an existing value.
func (c *canonicalizer) replaceWithValue(op *ir.Operation, resultID string, repl ir.Value) {
	c.replaceAllUses(resultID, repl)
	c.changed = true
}

// replaceAllUses rewrites uses of id throughout the enclosing function
// (IDs are unique per function, so a whole-function rewrite is exact).
func (c *canonicalizer) replaceAllUses(id string, repl ir.Value) {
	for _, r := range c.f.Regions {
		for _, b := range r.Blocks {
			replaceUsesInOps(b.Ops, id, repl)
		}
	}
}

func (c *canonicalizer) visitBinary(op *ir.Operation, consts constMap, out *[]*ir.Operation) bool {
	a, aok := consts.lookup(op.Operands[0])
	bAttr, bok := consts.lookup(op.Operands[1])
	t := op.Results[0].Type

	if aok && bok {
		x, y := constVal(a, t), constVal(bAttr, t)
		if r, ok := foldBinary(op.Name, x, y); ok {
			c.replaceWithConst(op, r, out)
			return true
		}
		// Legality branch: the fold declined a UB-carrying constant
		// expression (division by zero, overflowing shift...).
		c.opts.cover(covCanonDecline, op.Name)
		return false
	}

	// Same-operand identities. (Refining a possibly-undefined value to a
	// constant is sound: MLIR folders may refine undef.)
	if op.Operands[0].ID == op.Operands[1].ID {
		switch op.Name {
		case "arith.subi", "arith.xori":
			c.replaceWithConst(op, constVal(ir.IntAttr(0, t), t), out)
			return true
		case "arith.andi", "arith.ori",
			"arith.maxsi", "arith.maxui", "arith.minsi", "arith.minui":
			c.replaceWithValue(op, op.Results[0].ID, op.Operands[0])
			return true
		}
	}

	// Algebraic identities with one constant.
	if bok {
		y := constVal(bAttr, t)
		switch op.Name {
		case "arith.addi", "arith.subi", "arith.ori", "arith.xori",
			"arith.shli", "arith.shrsi", "arith.shrui":
			if y.IsZero() {
				c.replaceWithValue(op, op.Results[0].ID, op.Operands[0])
				return true
			}
		case "arith.muli":
			if y.Signed() == 1 {
				c.replaceWithValue(op, op.Results[0].ID, op.Operands[0])
				return true
			}
			if y.IsZero() {
				c.replaceWithValue(op, op.Results[0].ID, op.Operands[1])
				return true
			}
		case "arith.divsi", "arith.divui":
			if y.Signed() == 1 {
				c.replaceWithValue(op, op.Results[0].ID, op.Operands[0])
				return true
			}
		case "arith.remsi", "arith.remui":
			// x % 1 == 0 (and x % -1 == 0 for remui's huge divisor is
			// NOT zero, so only the signed case folds for -1).
			if y.Signed() == 1 || (op.Name == "arith.remsi" && y.Signed() == -1) {
				c.replaceWithConst(op, constVal(ir.IntAttr(0, t), t), out)
				return true
			}
		case "arith.andi":
			if y.IsZero() {
				c.replaceWithValue(op, op.Results[0].ID, op.Operands[1])
				return true
			}
			if y.Unsigned() == rtval.MaxUnsigned(y.Width()) {
				c.replaceWithValue(op, op.Results[0].ID, op.Operands[0])
				return true
			}
		}
	}
	if aok {
		x := constVal(a, t)
		switch op.Name {
		case "arith.addi", "arith.ori", "arith.xori":
			if x.IsZero() {
				c.replaceWithValue(op, op.Results[0].ID, op.Operands[1])
				return true
			}
		case "arith.muli":
			if x.Signed() == 1 {
				c.replaceWithValue(op, op.Results[0].ID, op.Operands[1])
				return true
			}
			if x.IsZero() {
				c.replaceWithValue(op, op.Results[0].ID, op.Operands[0])
				return true
			}
		case "arith.andi":
			if x.IsZero() {
				c.replaceWithValue(op, op.Results[0].ID, op.Operands[0])
				return true
			}
		}
	}
	return false
}

func isIndex(t ir.Type) bool {
	_, ok := t.(ir.IndexType)
	return ok
}

// foldBinary evaluates a binary arith op over constants, declining to
// fold UB-carrying cases (folding away runtime UB would change
// behaviour the fuzzer depends on observing).
func foldBinary(name string, x, y rtval.Int) (rtval.Int, bool) {
	switch name {
	case "arith.addi":
		return x.Add(y), true
	case "arith.subi":
		return x.Sub(y), true
	case "arith.muli":
		return x.Mul(y), true
	case "arith.andi":
		return x.And(y), true
	case "arith.ori":
		return x.Or(y), true
	case "arith.xori":
		return x.Xor(y), true
	case "arith.maxsi":
		return x.MaxS(y), true
	case "arith.maxui":
		return x.MaxU(y), true
	case "arith.minsi":
		return x.MinS(y), true
	case "arith.minui":
		return x.MinU(y), true
	case "arith.divsi":
		r, err := x.DivS(y)
		return r, err == nil
	case "arith.divui":
		r, err := x.DivU(y)
		return r, err == nil
	case "arith.remsi":
		r, err := x.RemS(y)
		return r, err == nil
	case "arith.remui":
		r, err := x.RemU(y)
		return r, err == nil
	case "arith.ceildivsi":
		r, err := x.CeilDivS(y)
		return r, err == nil
	case "arith.ceildivui":
		r, err := x.CeilDivU(y)
		return r, err == nil
	case "arith.floordivsi":
		r, err := x.FloorDivS(y)
		return r, err == nil
	case "arith.shli":
		r, err := x.ShL(y)
		return r, err == nil
	case "arith.shrsi":
		r, err := x.ShRS(y)
		return r, err == nil
	case "arith.shrui":
		r, err := x.ShRU(y)
		return r, err == nil
	}
	return rtval.Int{}, false
}

func (c *canonicalizer) visitCmpi(op *ir.Operation, consts constMap, out *[]*ir.Operation) bool {
	p, ok := op.Attrs.IntValueOf("predicate")
	if !ok {
		return false
	}
	pred := rtval.CmpPredicate(p)
	a, aok := consts.lookup(op.Operands[0])
	bAttr, bok := consts.lookup(op.Operands[1])
	if aok && bok {
		t := op.Operands[0].Type
		r, err := constVal(a, t).Cmp(pred, constVal(bAttr, t))
		if err != nil {
			c.opts.cover(covCanonDecline, op.Name)
			return false
		}
		c.replaceWithConst(op, r, out)
		return true
	}
	// cmpi(x, x) folds for reflexive/irreflexive predicates.
	if op.Operands[0].ID == op.Operands[1].ID {
		switch pred {
		case rtval.CmpEQ, rtval.CmpSLE, rtval.CmpSGE, rtval.CmpULE, rtval.CmpUGE:
			c.replaceWithConst(op, rtval.Bool(true), out)
			return true
		case rtval.CmpNE, rtval.CmpSLT, rtval.CmpSGT, rtval.CmpULT, rtval.CmpUGT:
			c.replaceWithConst(op, rtval.Bool(false), out)
			return true
		}
	}
	return false
}

func (c *canonicalizer) visitSelect(op *ir.Operation, consts constMap) bool {
	if cond, ok := consts.lookup(op.Operands[0]); ok {
		pick := op.Operands[2]
		if cond.Value != 0 {
			pick = op.Operands[1]
		}
		c.replaceWithValue(op, op.Results[0].ID, pick)
		return true
	}
	if op.Operands[1].ID == op.Operands[2].ID {
		c.replaceWithValue(op, op.Results[0].ID, op.Operands[1])
		return true
	}
	return false
}

func (c *canonicalizer) visitCast(op *ir.Operation, consts constMap, out *[]*ir.Operation) bool {
	a, ok := consts.lookup(op.Operands[0])
	if !ok {
		return false
	}
	from := constVal(a, op.Operands[0].Type)
	w, _ := ir.BitWidth(op.Results[0].Type)
	var r rtval.Int
	switch op.Name {
	case "arith.extsi":
		r = from.ExtS(w)
	case "arith.extui":
		r = from.ExtU(w)
	case "arith.trunci":
		r = from.Trunc(w)
	}
	c.replaceWithConst(op, r, out)
	return true
}

func (c *canonicalizer) visitIndexCast(op *ir.Operation, consts constMap, out *[]*ir.Operation) bool {
	// Bug 2: the chain fold index_cast(index_cast(y : index -> iN) :
	// iN -> index) => y drops the intermediate truncation.
	if c.opts.Bugs.Enabled(bugs.IndexCastChainFold) && op.Name == "arith.index_cast" && isIndex(op.Results[0].Type) {
		if src, ok := c.indexCastSrc[op.Operands[0].ID]; ok {
			c.replaceWithValue(op, op.Results[0].ID, src)
			return true
		}
	}
	// Record index -> integer casts for the chain pattern.
	if op.Name == "arith.index_cast" && isIndex(op.Operands[0].Type) {
		c.indexCastSrc[op.Results[0].ID] = op.Operands[0]
	}

	a, ok := consts.lookup(op.Operands[0])
	if !ok {
		return false
	}
	from := constVal(a, op.Operands[0].Type)
	var r rtval.Int
	switch op.Name {
	case "arith.index_cast":
		r = from.IndexCast(op.Results[0].Type)
	case "arith.index_castui":
		if c.opts.Bugs.Enabled(bugs.IndexCastUIFold) {
			// Bug 1: the fold sign-extends instead of zero-extending.
			r = from.IndexCast(op.Results[0].Type)
		} else {
			r = from.IndexCastU(op.Results[0].Type)
		}
	}
	c.replaceWithConst(op, r, out)
	return true
}

func (c *canonicalizer) visitMulsiExtended(op *ir.Operation, consts constMap, out *[]*ir.Operation) bool {
	t := op.Results[0].Type
	// The i1 special case, applied once per op. Correct: the high half
	// of the 2-bit signed product of i1 values is always 0, so fold it
	// to the zero constant. Bug 5 instead reasons "the high half is the
	// sign of the product, which for i1 equals the low half" and
	// re-wires high to low (paper Figure 2).
	if ir.TypeEqual(t, ir.I1) && !op.Attrs.Has("ratte.canonicalized") {
		op.Attrs.Set("ratte.canonicalized", ir.UnitAttr{})
		if c.opts.Bugs.Enabled(bugs.MulsiExtendedI1Fold) {
			c.replaceWithValue(op, op.Results[1].ID, op.Results[0])
		} else {
			zero, zv := buildConst(c.nm, 0, ir.I1)
			*out = append(*out, zero)
			c.replaceWithValue(op, op.Results[1].ID, zv)
		}
		return false
	}
	a, aok := consts.lookup(op.Operands[0])
	bAttr, bok := consts.lookup(op.Operands[1])
	if aok && bok {
		lo, hi := constVal(a, t).MulSIExtended(constVal(bAttr, t))
		cl, lv := buildConst(c.nm, lo.Signed(), t)
		ch, hv := buildConst(c.nm, hi.Signed(), t)
		*out = append(*out, cl, ch)
		c.replaceAllUses(op.Results[0].ID, lv)
		c.replaceAllUses(op.Results[1].ID, hv)
		c.changed = true
		return true
	}
	return false
}

func (c *canonicalizer) visitAdduiExtended(op *ir.Operation, consts constMap, out *[]*ir.Operation) bool {
	a, aok := consts.lookup(op.Operands[0])
	bAttr, bok := consts.lookup(op.Operands[1])
	if !aok || !bok {
		return false
	}
	t := op.Results[0].Type
	sum, overflow := constVal(a, t).AddUIExtended(constVal(bAttr, t))
	cs, sv := buildConst(c.nm, sum.Signed(), t)
	co, ov := buildConst(c.nm, overflow.Signed(), ir.I1)
	*out = append(*out, cs, co)
	c.replaceAllUses(op.Results[0].ID, sv)
	c.replaceAllUses(op.Results[1].ID, ov)
	c.changed = true
	return true
}

// dce removes pure operations none of whose results are used, in every
// block of the function including nested regions.
func (c *canonicalizer) dce(f *ir.Operation) {
	for {
		removed := false
		uses := usedIDsOfFunc(f)
		_ = forEachBlock(f, func(b *ir.Block) error {
			var kept []*ir.Operation
			for _, op := range b.Ops {
				if isPure(op) && !anyResultUsed(op, uses) {
					c.opts.cover(covCanonDCE, op.Name)
					removed = true
					c.changed = true
					continue
				}
				kept = append(kept, op)
			}
			b.Ops = kept
			return nil
		})
		if !removed {
			break
		}
	}
}

func usedIDsOfFunc(f *ir.Operation) map[string]int {
	uses := make(map[string]int)
	for _, r := range f.Regions {
		for _, b := range r.Blocks {
			for id, n := range usedIDs(b.Ops) {
				uses[id] += n
			}
		}
	}
	return uses
}

func anyResultUsed(op *ir.Operation, uses map[string]int) bool {
	for _, r := range op.Results {
		if uses[r.ID] > 0 {
			return true
		}
	}
	return false
}
