package compiler

import (
	"fmt"

	"ratte/internal/bugs"
	"ratte/internal/ir"
)

// runRemoveDeadValues eliminates dead values module-wide: pure
// operations with no used results, and unreachable (never-called,
// non-entry) functions.
//
// Bug 3 (issue 82788): the buggy pass mishandles func.call operations
// with unused results and rejects the module — a wrong compile-time
// rejection of a valid program, observed by the non-crash oracle.
func runRemoveDeadValues(m *ir.Module, opts *Options) error {
	if opts.Bugs.Enabled(bugs.RemoveDeadValuesCall) {
		// The defective liveness bookkeeping trips over calls with a
		// dead result and aborts the pass. SSA ids are only unique per
		// function, so liveness is computed function-locally.
		for _, f := range funcsOf(m) {
			uses := usedIDsOfFunc(f)
			var rejection error
			f.Walk(func(op *ir.Operation) bool {
				if op.Name != "func.call" {
					return true
				}
				for _, r := range op.Results {
					if uses[r.ID] == 0 {
						rejection = fmt.Errorf("remove-dead-values: 'func.call' op result %%%s expected to be live", r.ID)
						return false
					}
				}
				return true
			})
			if rejection != nil {
				return rejection
			}
		}
	}

	// Correct behaviour: per-function DCE of pure ops.
	for _, f := range funcsOf(m) {
		for {
			removed := false
			uses := usedIDsOfFunc(f)
			_ = forEachBlock(f, func(b *ir.Block) error {
				var kept []*ir.Operation
				for _, op := range b.Ops {
					if isPure(op) && !anyResultUsed(op, uses) {
						opts.cover(covDeadRemove, op.Name)
						removed = true
						continue
					}
					kept = append(kept, op)
				}
				b.Ops = kept
				return nil
			})
			if !removed {
				break
			}
		}
	}

	// Drop functions never referenced by a call and not plausibly an
	// entry point (we keep "main" and anything called).
	called := map[string]bool{"main": true}
	m.Walk(func(op *ir.Operation) bool {
		if op.Name == "func.call" || op.Name == "llvm.call" {
			if sym, ok := op.Attrs.Get("callee").(ir.SymbolRefAttr); ok {
				called[sym.Name] = true
			}
		}
		return true
	})
	var kept []*ir.Operation
	for _, op := range m.Body().Ops {
		if op.Name == "func.func" || op.Name == "llvm.func" {
			if !called[ir.FuncSymbol(op)] {
				opts.cover(covDeadRemove, op.Name)
				continue
			}
		}
		kept = append(kept, op)
	}
	m.Body().Ops = kept
	return nil
}
