package compiler

import (
	"fmt"

	"ratte/internal/bugs"
	"ratte/internal/ir"
	"ratte/internal/rtval"
)

// arithToLLVM maps arith ops with a one-to-one llvm counterpart.
var arithToLLVM = map[string]string{
	"arith.addi":   "llvm.add",
	"arith.subi":   "llvm.sub",
	"arith.muli":   "llvm.mul",
	"arith.andi":   "llvm.and",
	"arith.ori":    "llvm.or",
	"arith.xori":   "llvm.xor",
	"arith.divsi":  "llvm.sdiv",
	"arith.divui":  "llvm.udiv",
	"arith.remsi":  "llvm.srem",
	"arith.remui":  "llvm.urem",
	"arith.shli":   "llvm.shl",
	"arith.shrsi":  "llvm.ashr",
	"arith.shrui":  "llvm.lshr",
	"arith.cmpi":   "llvm.icmp",
	"arith.select": "llvm.select",
	"arith.extsi":  "llvm.sext",
	"arith.extui":  "llvm.zext",
	"arith.trunci": "llvm.trunc",
	// index is modelled as a 64-bit integer at the llvm level; the
	// casts keep their extension behaviour.
	"arith.index_cast":   "llvm.sext",
	"arith.index_castui": "llvm.zext",
}

// runArithToLLVM converts arith operations to the llvm dialect,
// mirroring convert-arith-to-llvm. Most ops map one-to-one; min/max
// become compare+select; the extended-arithmetic ops expand into
// multi-op llvm sequences; the rounded divisions (when arith-expand has
// not already expanded them) get direct conversions — the home of
// bugs 4 (addui_extended legalization failure) and 6 (ceildivsi
// converted with the positive-only formula).
func runArithToLLVM(m *ir.Module, opts *Options) error {
	for _, f := range funcsOf(m) {
		nm := newNamer(f)
		err := forEachBlock(f, func(b *ir.Block) error {
			var out []*ir.Operation
			for _, op := range b.Ops {
				ops, err := convertArithOp(nm, op, opts)
				if err != nil {
					return err
				}
				out = append(out, ops...)
			}
			b.Ops = out
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func convertArithOp(nm *namer, op *ir.Operation, opts *Options) ([]*ir.Operation, error) {
	if target, ok := arithToLLVM[op.Name]; ok {
		opts.cover(covToLLVM, op.Name)
		c := op.Clone()
		c.Name = target
		c.Attrs.Delete("ratte.canonicalized")
		return []*ir.Operation{c}, nil
	}
	switch op.Name {
	case "arith.constant":
		if _, ok := op.Attrs.Get("value").(ir.IntegerAttr); !ok {
			return nil, fmt.Errorf("non-scalar constant survived to convert-arith-to-llvm")
		}
		opts.cover(covToLLVM, op.Name)
		c := op.Clone()
		c.Name = "llvm.mlir.constant"
		return []*ir.Operation{c}, nil

	case "arith.maxsi", "arith.maxui", "arith.minsi", "arith.minui":
		opts.cover(covToLLVM, op.Name)
		return convertMinMax(nm, op), nil

	case "arith.addui_extended":
		if opts.Bugs.Enabled(bugs.AdduiExtendedLegalize) && ir.TypeEqual(op.Results[0].Type, ir.I1) {
			// Bug 4: no conversion pattern accepts the i1 case and the
			// pass signals a legalization failure.
			opts.cover(covToLLVMFail, op.Name)
			return nil, fmt.Errorf("failed to legalize operation 'arith.addui_extended'")
		}
		opts.cover(covToLLVM, op.Name)
		return convertAdduiExtended(nm, op), nil

	case "arith.mulsi_extended":
		opts.cover(covToLLVM, op.Name)
		return convertMulExtended(nm, op, "llvm.smulh"), nil
	case "arith.mului_extended":
		opts.cover(covToLLVM, op.Name)
		return convertMulExtended(nm, op, "llvm.umulh"), nil

	case "arith.ceildivsi":
		opts.cover(covToLLVM, op.Name)
		return convertCeilDivSi(nm, op, opts), nil
	case "arith.floordivsi":
		opts.cover(covToLLVM, op.Name)
		return convertFloorDivSi(nm, op), nil
	case "arith.ceildivui":
		opts.cover(covToLLVM, op.Name)
		return convertCeilDivUi(nm, op), nil
	}
	if op.Dialect() == "arith" {
		return nil, fmt.Errorf("no conversion for %s", op.Name)
	}
	return []*ir.Operation{op}, nil
}

type llvmEmitter struct {
	nm  *namer
	ops []*ir.Operation
}

func (e *llvmEmitter) constant(v int64, t ir.Type) ir.Value {
	op := ir.NewOp("llvm.mlir.constant")
	op.Attrs.Set("value", ir.IntAttr(v, t))
	res := e.nm.Value(t)
	op.Results = []ir.Value{res}
	e.ops = append(e.ops, op)
	return res
}

func (e *llvmEmitter) op1(name string, t ir.Type, operands ...ir.Value) ir.Value {
	op, res := buildOp1(e.nm, name, t, operands...)
	e.ops = append(e.ops, op)
	return res
}

func (e *llvmEmitter) icmp(pred rtval.CmpPredicate, a, b ir.Value) ir.Value {
	op := ir.NewOp("llvm.icmp")
	op.Operands = []ir.Value{a, b}
	op.Attrs.Set("predicate", ir.IntAttr(int64(pred), ir.I64))
	res := e.nm.Value(ir.I1)
	op.Results = []ir.Value{res}
	e.ops = append(e.ops, op)
	return res
}

// aliasResult binds the final expansion value to the original result ID.
func (e *llvmEmitter) aliasResult(orig ir.Value, val ir.Value) {
	zero := e.constant(0, orig.Type)
	op := ir.NewOp("llvm.add")
	op.Operands = []ir.Value{val, zero}
	op.Results = []ir.Value{orig}
	e.ops = append(e.ops, op)
}

func convertMinMax(nm *namer, op *ir.Operation) []*ir.Operation {
	e := &llvmEmitter{nm: nm}
	var pred rtval.CmpPredicate
	switch op.Name {
	case "arith.maxsi":
		pred = rtval.CmpSGT
	case "arith.maxui":
		pred = rtval.CmpUGT
	case "arith.minsi":
		pred = rtval.CmpSLT
	case "arith.minui":
		pred = rtval.CmpULT
	}
	a, b := op.Operands[0], op.Operands[1]
	c := e.icmp(pred, a, b)
	sel := ir.NewOp("llvm.select")
	sel.Operands = []ir.Value{c, a, b}
	sel.Results = []ir.Value{op.Results[0]}
	e.ops = append(e.ops, sel)
	return e.ops
}

func convertAdduiExtended(nm *namer, op *ir.Operation) []*ir.Operation {
	e := &llvmEmitter{nm: nm}
	a, b := op.Operands[0], op.Operands[1]
	t := op.Results[0].Type
	sum := e.op1("llvm.add", t, a, b)
	e.aliasResult(op.Results[0], sum)
	// overflow = sum <u a
	ov := ir.NewOp("llvm.icmp")
	ov.Operands = []ir.Value{sum, a}
	ov.Attrs.Set("predicate", ir.IntAttr(int64(rtval.CmpULT), ir.I64))
	ov.Results = []ir.Value{op.Results[1]}
	e.ops = append(e.ops, ov)
	return e.ops
}

func convertMulExtended(nm *namer, op *ir.Operation, highOp string) []*ir.Operation {
	e := &llvmEmitter{nm: nm}
	a, b := op.Operands[0], op.Operands[1]
	lo := ir.NewOp("llvm.mul")
	lo.Operands = []ir.Value{a, b}
	lo.Results = []ir.Value{op.Results[0]}
	hi := ir.NewOp(highOp)
	hi.Operands = []ir.Value{a, b}
	hi.Results = []ir.Value{op.Results[1]}
	e.ops = append(e.ops, lo, hi)
	return e.ops
}

// convertCeilDivSi directly converts arith.ceildivsi (used when
// arith-expand did not run first).
//
// Correct: the quotient/remainder adjustment.
// Bug 6 (issue 89382): the positive-operand-only (a + b - 1) / b.
func convertCeilDivSi(nm *namer, op *ir.Operation, opts *Options) []*ir.Operation {
	e := &llvmEmitter{nm: nm}
	a, b := op.Operands[0], op.Operands[1]
	t := op.Results[0].Type

	if opts.Bugs.Enabled(bugs.CeilDivSiConvert) {
		one := e.constant(1, t)
		apb := e.op1("llvm.add", t, a, b)
		apbm1 := e.op1("llvm.sub", t, apb, one)
		q := e.op1("llvm.sdiv", t, apbm1, b)
		e.aliasResult(op.Results[0], q)
		return e.ops
	}

	zero := e.constant(0, t)
	one := e.constant(1, t)
	q := e.op1("llvm.sdiv", t, a, b)
	r := e.op1("llvm.srem", t, a, b)
	rNonZero := e.icmp(rtval.CmpNE, r, zero)
	rNeg := e.icmp(rtval.CmpSLT, r, zero)
	bNeg := e.icmp(rtval.CmpSLT, b, zero)
	sameSign := e.icmp(rtval.CmpEQ, rNeg, bNeg)
	adjust := e.op1("llvm.and", ir.I1, rNonZero, sameSign)
	qp1 := e.op1("llvm.add", t, q, one)
	res := e.op1("llvm.select", t, adjust, qp1, q)
	e.aliasResult(op.Results[0], res)
	return e.ops
}

// convertFloorDivSi directly converts arith.floordivsi with the correct
// quotient/remainder adjustment.
func convertFloorDivSi(nm *namer, op *ir.Operation) []*ir.Operation {
	e := &llvmEmitter{nm: nm}
	a, b := op.Operands[0], op.Operands[1]
	t := op.Results[0].Type
	zero := e.constant(0, t)
	one := e.constant(1, t)
	q := e.op1("llvm.sdiv", t, a, b)
	r := e.op1("llvm.srem", t, a, b)
	rNonZero := e.icmp(rtval.CmpNE, r, zero)
	rNeg := e.icmp(rtval.CmpSLT, r, zero)
	bNeg := e.icmp(rtval.CmpSLT, b, zero)
	signsDiffer := e.op1("llvm.xor", ir.I1, rNeg, bNeg)
	adjust := e.op1("llvm.and", ir.I1, rNonZero, signsDiffer)
	qm1 := e.op1("llvm.sub", t, q, one)
	res := e.op1("llvm.select", t, adjust, qm1, q)
	e.aliasResult(op.Results[0], res)
	return e.ops
}

// convertCeilDivUi directly converts arith.ceildivui.
func convertCeilDivUi(nm *namer, op *ir.Operation) []*ir.Operation {
	e := &llvmEmitter{nm: nm}
	a, b := op.Operands[0], op.Operands[1]
	t := op.Results[0].Type
	zero := e.constant(0, t)
	one := e.constant(1, t)
	am1 := e.op1("llvm.sub", t, a, one)
	q := e.op1("llvm.udiv", t, am1, b)
	qp1 := e.op1("llvm.add", t, q, one)
	isZero := e.icmp(rtval.CmpEQ, a, zero)
	res := e.op1("llvm.select", t, isZero, zero, qp1)
	e.aliasResult(op.Results[0], res)
	return e.ops
}

// runFuncToLLVM converts the func dialect to llvm function ops.
func runFuncToLLVM(m *ir.Module, opts *Options) error {
	rename := map[string]string{
		"func.func":   "llvm.func",
		"func.call":   "llvm.call",
		"func.return": "llvm.return",
	}
	m.Walk(func(op *ir.Operation) bool {
		if to, ok := rename[op.Name]; ok {
			opts.cover(covToLLVM, op.Name)
			op.Name = to
		}
		return true
	})
	return nil
}

// runVectorToLLVM lowers vector.print to the runtime print primitive.
func runVectorToLLVM(m *ir.Module, opts *Options) error {
	var err error
	m.Walk(func(op *ir.Operation) bool {
		if op.Name != "vector.print" {
			return true
		}
		if !ir.IsIntegerOrIndex(op.Operands[0].Type) {
			opts.cover(covToLLVMFail, op.Name)
			err = fmt.Errorf("vector.print of non-scalar type %s cannot be lowered", op.Operands[0].Type)
			return false
		}
		opts.cover(covToLLVM, op.Name)
		op.Name = "llvm.print"
		return true
	})
	return err
}
