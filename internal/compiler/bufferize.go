package compiler

import (
	"fmt"

	"ratte/internal/ir"
)

// runBufferize rewrites tensor values into memref buffers, mirroring
// one-shot-bufferize (plus func-bufferize): function signatures, block
// arguments and op result types change tensor<…> to memref<…>; tensor
// ops become buffer ops; linalg ops switch to their memref
// (destination-passing) form, keeping their regions for
// convert-linalg-to-loops. Value semantics are preserved by copying:
// every op that would create a new tensor allocates a fresh buffer.
func runBufferize(m *ir.Module, opts *Options) error {
	// Pass 1: rewrite all types (signatures, block args, operands,
	// results) so cross-function references agree.
	m.Walk(func(op *ir.Operation) bool {
		for i, o := range op.Operands {
			op.Operands[i].Type = bufferizeType(o.Type)
		}
		for i, r := range op.Results {
			op.Results[i].Type = bufferizeType(r.Type)
		}
		for si := range op.Successors {
			for ai, a := range op.Successors[si].Args {
				op.Successors[si].Args[ai].Type = bufferizeType(a.Type)
			}
		}
		if ta, ok := op.Attrs.Get("function_type").(ir.TypeAttr); ok {
			op.Attrs.Set("function_type", ir.TypeAttrOf(bufferizeType(ta.Type)))
		}
		for _, r := range op.Regions {
			for _, b := range r.Blocks {
				for i, a := range b.Args {
					b.Args[i].Type = bufferizeType(a.Type)
				}
			}
		}
		return true
	})

	// Pass 2: rewrite tensor/linalg ops into buffer form.
	for _, f := range funcsOf(m) {
		nm := newNamer(f)
		err := forEachBlock(f, func(b *ir.Block) error {
			var out []*ir.Operation
			for _, op := range b.Ops {
				ops, err := bufferizeOp(nm, op, opts)
				if err != nil {
					return err
				}
				out = append(out, ops...)
			}
			b.Ops = out
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// bufferizeType converts tensor types to memref types, recursively
// through function types.
func bufferizeType(t ir.Type) ir.Type {
	switch t := t.(type) {
	case ir.TensorType:
		return ir.MemRefOf(t.Shape, t.Elem)
	case ir.FunctionType:
		ins := make([]ir.Type, len(t.Inputs))
		for i, in := range t.Inputs {
			ins[i] = bufferizeType(in)
		}
		outs := make([]ir.Type, len(t.Results))
		for i, out := range t.Results {
			outs[i] = bufferizeType(out)
		}
		return ir.FuncOf(ins, outs)
	}
	return t
}

// bufEmitter builds buffer-op sequences.
type bufEmitter struct {
	nm  *namer
	ops []*ir.Operation
}

func (e *bufEmitter) indexConst(v int64) ir.Value {
	op, res := buildConst(e.nm, v, ir.Index)
	e.ops = append(e.ops, op)
	return res
}

func (e *bufEmitter) append(op *ir.Operation) { e.ops = append(e.ops, op) }

// alloc emits a memref.alloc producing exactly the given result value.
func (e *bufEmitter) alloc(res ir.Value, extents []ir.Value) {
	op := ir.NewOp("memref.alloc")
	op.Operands = extents
	op.Results = []ir.Value{res}
	e.ops = append(e.ops, op)
}

// dimsOf emits ops yielding the dynamic-extent values of an existing
// memref value, one per dynamic dim of its type.
func (e *bufEmitter) dimsOf(src ir.Value) []ir.Value {
	mt := src.Type.(ir.MemRefType)
	var extents []ir.Value
	for i, d := range mt.Shape {
		if d != ir.DynamicSize {
			continue
		}
		idx := e.indexConst(int64(i))
		op, res := buildOp1(e.nm, "memref.dim", ir.Index, src, idx)
		e.append(op)
		extents = append(extents, res)
	}
	return extents
}

func bufferizeOp(nm *namer, op *ir.Operation, opts *Options) ([]*ir.Operation, error) {
	// Recurse into regions first (scf.if/scf.for bodies and the linalg/
	// tensor regions that survive to convert-linalg-to-loops).
	for _, r := range op.Regions {
		for _, b := range r.Blocks {
			var out []*ir.Operation
			for _, inner := range b.Ops {
				ops, err := bufferizeOp(nm, inner, opts)
				if err != nil {
					return nil, err
				}
				out = append(out, ops...)
			}
			b.Ops = out
		}
	}

	switch op.Name {
	case "arith.constant":
		dense, ok := op.Attrs.Get("value").(ir.DenseIntAttr)
		if !ok {
			return []*ir.Operation{op}, nil
		}
		opts.cover(covBufferize, op.Name)
		return bufferizeDenseConstant(nm, op, dense)

	case "tensor.empty":
		opts.cover(covBufferize, op.Name)
		e := &bufEmitter{nm: nm}
		e.alloc(op.Results[0], op.Operands)
		return e.ops, nil

	case "tensor.extract":
		opts.cover(covBufferize, op.Name)
		c := op.Clone()
		c.Name = "memref.load"
		return []*ir.Operation{c}, nil

	case "tensor.dim":
		opts.cover(covBufferize, op.Name)
		c := op.Clone()
		c.Name = "memref.dim"
		return []*ir.Operation{c}, nil

	case "tensor.cast":
		opts.cover(covBufferize, op.Name)
		c := op.Clone()
		c.Name = "memref.cast"
		return []*ir.Operation{c}, nil

	case "tensor.insert":
		// %res = alloc(like dest); copy(dest, res); store(v, res, idx).
		opts.cover(covBufferize, op.Name)
		e := &bufEmitter{nm: nm}
		dest := op.Operands[1]
		e.alloc(op.Results[0], e.dimsOf(dest))
		cp := ir.NewOp("memref.copy")
		cp.Operands = []ir.Value{dest, op.Results[0]}
		e.append(cp)
		st := ir.NewOp("memref.store")
		st.Operands = append([]ir.Value{op.Operands[0], op.Results[0]}, op.Operands[2:]...)
		e.append(st)
		return e.ops, nil

	case "tensor.generate":
		// Handled by convert-linalg-to-loops (needs loop construction);
		// here it becomes an alloc + a generate-into-buffer marker op.
		opts.cover(covBufferize, op.Name)
		e := &bufEmitter{nm: nm}
		e.alloc(op.Results[0], op.Operands)
		gen := ir.NewOp("ratte.generate_into")
		gen.Operands = []ir.Value{op.Results[0]}
		gen.Regions = op.Regions
		e.append(gen)
		return e.ops, nil

	case "linalg.fill":
		opts.cover(covBufferize, op.Name)
		e := &bufEmitter{nm: nm}
		dest := op.Operands[1]
		e.alloc(op.Results[0], e.dimsOf(dest))
		fill := ir.NewOp("linalg.fill")
		fill.Operands = []ir.Value{op.Operands[0], op.Results[0]}
		fill.Attrs = op.Attrs.Clone()
		e.append(fill)
		return e.ops, nil

	case "linalg.generic":
		opts.cover(covBufferize, op.Name)
		nIns := 0
		if arr, ok := op.Attrs.Get("operand_segment_sizes").(ir.ArrayAttr); ok && len(arr.Elems) == 2 {
			if a, ok := arr.Elems[0].(ir.IntegerAttr); ok {
				nIns = int(a.Value)
			}
		}
		e := &bufEmitter{nm: nm}
		// One fresh output buffer per result, initialised from the
		// tensor-form out operand (accumulators need their contents).
		newOuts := make([]ir.Value, len(op.Results))
		for i, res := range op.Results {
			src := op.Operands[nIns+i]
			e.alloc(res, e.dimsOf(src))
			cp := ir.NewOp("memref.copy")
			cp.Operands = []ir.Value{src, res}
			e.append(cp)
			newOuts[i] = res
		}
		g := ir.NewOp("linalg.generic")
		g.Operands = append(append([]ir.Value(nil), op.Operands[:nIns]...), newOuts...)
		g.Attrs = op.Attrs.Clone()
		g.Regions = op.Regions
		e.append(g)
		return e.ops, nil

	case "vector.print":
		if _, isBuf := op.Operands[0].Type.(ir.MemRefType); isBuf {
			return nil, fmt.Errorf("vector.print of a tensor cannot be bufferized (print scalars instead)")
		}
		return []*ir.Operation{op}, nil

	case "arith.select":
		if _, isBuf := op.Results[0].Type.(ir.MemRefType); isBuf {
			return nil, fmt.Errorf("arith.select over tensors is not supported by bufferization")
		}
		return []*ir.Operation{op}, nil
	}
	return []*ir.Operation{op}, nil
}

// bufferizeDenseConstant lowers a dense tensor constant to an alloc
// plus element stores.
func bufferizeDenseConstant(nm *namer, op *ir.Operation, dense ir.DenseIntAttr) ([]*ir.Operation, error) {
	mt, ok := op.Results[0].Type.(ir.MemRefType)
	if !ok {
		return nil, fmt.Errorf("dense constant result was not bufferized")
	}
	if !mt.HasStaticShape() {
		return nil, fmt.Errorf("dense constant with dynamic shape")
	}
	e := &bufEmitter{nm: nm}
	e.alloc(op.Results[0], nil)

	// Cache index constants and element constants.
	idxConst := map[int64]ir.Value{}
	getIdx := func(v int64) ir.Value {
		if c, ok := idxConst[v]; ok {
			return c
		}
		c := e.indexConst(v)
		idxConst[v] = c
		return c
	}
	elemConst := map[int64]ir.Value{}
	getElem := func(v int64) ir.Value {
		if c, ok := elemConst[v]; ok {
			return c
		}
		cop, res := buildConst(e.nm, v, mt.Elem)
		e.append(cop)
		elemConst[v] = res
		return res
	}

	n := mt.NumElements()
	idx := make([]int64, mt.Rank())
	for flat := int64(0); flat < n; flat++ {
		v := dense.Values[0]
		if !dense.Splat {
			v = dense.Values[flat]
		}
		st := ir.NewOp("memref.store")
		st.Operands = []ir.Value{getElem(v), op.Results[0]}
		for _, x := range idx {
			st.Operands = append(st.Operands, getIdx(x))
		}
		e.append(st)
		for i := mt.Rank() - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < mt.Shape[i] {
				break
			}
			idx[i] = 0
		}
	}
	return e.ops, nil
}
