package compiler_test

import (
	"strings"
	"testing"

	"ratte/internal/compiler"
	"ratte/internal/ir"
)

func TestRemoveDeadValuesDropsUncalledFunctions(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %r = "func.call"() {callee = @used} : () -> (i64)
    "vector.print"(%r) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    "func.return"(%a) : (i64) -> ()
  }) {sym_name = "used", function_type = () -> (i64)} : () -> ()
  "func.func"() ({
    "func.return"() : () -> ()
  }) {sym_name = "orphan", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m := mustParse(t, src)
	pipe, _ := compiler.NewPipeline("remove-dead-values")
	if err := pipe.Run(m, &compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	if m.Func("orphan") != nil {
		t.Error("uncalled function not removed")
	}
	if m.Func("used") == nil || m.Func("main") == nil {
		t.Error("live functions were removed")
	}
}

func TestRemoveDeadValuesDropsDeadChains(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %b = "arith.addi"(%a, %a) : (i64, i64) -> (i64)
    %c = "arith.muli"(%b, %b) : (i64, i64) -> (i64)
    "vector.print"(%a) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`
	m := mustParse(t, src)
	pipe, _ := compiler.NewPipeline("remove-dead-values")
	if err := pipe.Run(m, &compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	text := ir.Print(m)
	if strings.Contains(text, "arith.addi") || strings.Contains(text, "arith.muli") {
		t.Errorf("dead chain survives:\n%s", text)
	}
}

// TestCSESiblingRegionIsolation: identical expressions local to the two
// regions of one scf.if must NOT be merged across regions (neither
// region dominates the other), while a preceding outer expression is
// shared into both.
func TestCSESiblingRegionIsolation(t *testing.T) {
	src := `"builtin.module"() ({
  "func.func"() ({
  ^bb0(%c: i1, %x: i64):
    %outer = "arith.addi"(%x, %x) : (i64, i64) -> (i64)
    %r = "scf.if"(%c) ({
      %t1 = "arith.addi"(%x, %x) : (i64, i64) -> (i64)
      %t2 = "arith.muli"(%x, %x) : (i64, i64) -> (i64)
      %t3 = "arith.addi"(%t1, %t2) : (i64, i64) -> (i64)
      "scf.yield"(%t3) : (i64) -> ()
    }, {
      %e1 = "arith.muli"(%x, %x) : (i64, i64) -> (i64)
      "scf.yield"(%e1) : (i64) -> ()
    }) : (i1) -> (i64)
    "func.return"(%r) : (i64) -> ()
  }) {sym_name = "main", function_type = (i1, i64) -> (i64)} : () -> ()
}) : () -> ()`
	m := mustParse(t, src)
	pipe, _ := compiler.NewPipeline("cse")
	if err := pipe.Run(m, &compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	adds, muls := 0, 0
	m.Walk(func(op *ir.Operation) bool {
		switch op.Name {
		case "arith.addi":
			adds++
		case "arith.muli":
			muls++
		}
		return true
	})
	// %t1 dedups onto %outer (outer scope dominates the region); %t3
	// stays (distinct operands). The two muli live in SIBLING regions
	// and must both survive.
	if adds != 2 {
		t.Errorf("addi count = %d, want 2 (outer + t3):\n%s", adds, ir.Print(m))
	}
	if muls != 2 {
		t.Errorf("muli count = %d, want 2 (one per sibling region):\n%s", muls, ir.Print(m))
	}
}
