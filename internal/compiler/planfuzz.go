// Plan fuzzing: sampling random *legal* pass pipelines (ROADMAP item
// 2, the axis Graal's CompilationPlanFuzzing exercises). The four fixed
// build configurations only ever run four phase orders; phase-ordering
// miscompiles live in the orders nobody wrote down. This file declares
// each pass's scheduling constraints in a metadata registry (the
// machine-checkable form of "scf must be lowered to cf before the llvm
// conversions"), samples seeded random plans that satisfy them —
// a minimal mandatory-stage skeleton with optional passes inserted at
// legal points — and validates any plan against the same rules, so the
// checker doubles as a standalone pipeline lint.
//
// Sampled plans compile through the same prefix-tree sharing core as
// the fixed configurations (compileTree): plans sharing a prefix
// compile once to the divergence point, which is what keeps per-plan
// cost sublinear in the plan count.
package compiler

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"ratte/internal/bugs"
	"ratte/internal/dialects"
	"ratte/internal/ir"
	"ratte/internal/verify"
)

// PassMeta declares one pass's scheduling constraints — the
// pre/postcondition model ValidatePlan checks and SamplePlans respects.
type PassMeta struct {
	// Name is the pass's registry name (mlir-opt flag spelling).
	Name string
	// Mandatory marks lowering-skeleton stages: they appear exactly
	// once in every legal plan for a preset whose skeleton contains
	// them, and never in plans for other presets.
	Mandatory bool
	// TensorOnly restricts the pass to tensor-bearing presets (its
	// input ops do not exist in scalar programs).
	TensorOnly bool
	// Requires lists passes that must have run before any occurrence
	// of this one. A requirement only binds when the required pass is
	// part of the preset's skeleton: arith-expand must follow
	// convert-linalg-to-loops where linalg lowering exists at all, and
	// is unconstrained by it in scalar plans.
	Requires []string
	// InvalidatedBy lists passes after which this one may no longer
	// appear: its input ops have been converted away (arith-expand
	// after convert-arith-to-llvm has no arith ops left to expand, and
	// the bug-6 direct conversion has already committed).
	InvalidatedBy []string
	// FuseWith names a mandatory stage that must immediately follow
	// this one. one-shot-bufferize fuses with convert-linalg-to-loops:
	// the half-bufferized module between them is internal state no
	// other pass is specified over.
	FuseWith string
	// MaxOccur bounds how many times an optional pass may appear in
	// one plan (0 means once). Mandatory stages always appear exactly
	// once.
	MaxOccur int
	// Idempotent marks passes for which immediately repeated runs are
	// no-ops. The plan shrinker collapses adjacent duplicates of
	// idempotent passes first; the sampler deliberately generates them
	// to test the claim.
	Idempotent bool
}

// planMeta is the pass-metadata registry: every registered pass's
// scheduling constraints. The skeleton order (PlanSkeleton) is encoded
// here as a Requires chain, so ValidatePlan needs no second source of
// ordering truth.
var planMeta = map[string]PassMeta{
	"canonicalize": {
		Name: "canonicalize", MaxOccur: 3, Idempotent: true,
	},
	"cse": {
		Name: "cse", MaxOccur: 2, Idempotent: true,
	},
	"remove-dead-values": {
		Name: "remove-dead-values", MaxOccur: 2, Idempotent: true,
	},
	"arith-expand": {
		Name: "arith-expand", MaxOccur: 2, Idempotent: true,
		Requires:      []string{"convert-linalg-to-loops"},
		InvalidatedBy: []string{"convert-arith-to-llvm"},
	},
	"one-shot-bufferize": {
		Name: "one-shot-bufferize", Mandatory: true, TensorOnly: true,
		FuseWith: "convert-linalg-to-loops",
	},
	"convert-linalg-to-loops": {
		Name: "convert-linalg-to-loops", Mandatory: true, TensorOnly: true,
		Requires: []string{"one-shot-bufferize"},
	},
	"convert-scf-to-cf": {
		Name: "convert-scf-to-cf", Mandatory: true,
		// linalg lowering *produces* scf loops; where it exists it must
		// come first.
		Requires: []string{"convert-linalg-to-loops"},
	},
	"convert-arith-to-llvm": {
		Name: "convert-arith-to-llvm", Mandatory: true,
		Requires: []string{"convert-scf-to-cf"},
	},
	"convert-vector-to-llvm": {
		Name: "convert-vector-to-llvm", Mandatory: true,
		Requires: []string{"convert-arith-to-llvm"},
	},
	"convert-func-to-llvm": {
		Name: "convert-func-to-llvm", Mandatory: true,
		Requires: []string{"convert-vector-to-llvm"},
	},
}

// PassMetadata returns the scheduling constraints declared for a pass.
func PassMetadata(name string) (PassMeta, bool) {
	m, ok := planMeta[name]
	return m, ok
}

// PlanSkeleton returns the preset's mandatory lowering skeleton: the
// minimal legal plan, in its one legal order. Every legal plan is this
// skeleton with optional passes inserted at legal points.
func PlanSkeleton(preset string) ([]string, error) {
	scalar := []string{"convert-scf-to-cf", "convert-arith-to-llvm", "convert-vector-to-llvm", "convert-func-to-llvm"}
	switch preset {
	case "ariths":
		return scalar, nil
	case "linalggeneric", "tensor", "all":
		return append([]string{"one-shot-bufferize", "convert-linalg-to-loops"}, scalar...), nil
	}
	return nil, fmt.Errorf("compiler: unknown preset %q", preset)
}

// OptionalPasses returns the passes SamplePlans may insert into a
// preset's skeleton, in the fixed order the sampler draws them.
func OptionalPasses(preset string) []string {
	return []string{"arith-expand", "canonicalize", "cse", "remove-dead-values"}
}

// Plan is one compilation plan under test: an ordered pass list for a
// preset. The zero Plan is invalid; build plans with SamplePlans or
// assemble them by hand and check with ValidatePlan.
type Plan struct {
	Preset string   `json:"preset"`
	Passes []string `json:"passes"`
}

// Fingerprint returns the plan's 64-bit FNV-1a identity over the
// preset and the exact pass sequence. Two plans are the same plan iff
// their fingerprints match.
func (p Plan) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(p.Preset))
	h.Write([]byte{0})
	for _, name := range p.Passes {
		h.Write([]byte(name))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Name is the plan's short display name. It is deliberately NOT unique
// — many sampled plans share a length — which is why everything that
// must distinguish plans keys by Key, never by Name.
func (p Plan) Name() string { return fmt.Sprintf("plan-%dp", len(p.Passes)) }

// Key is the plan's unique identity: the display name plus the
// fingerprint. Verdict tagging, journal resume and report dedup all
// key by this.
func (p Plan) Key() string { return fmt.Sprintf("%s|%016x", p.Name(), p.Fingerprint()) }

// String renders the full pass sequence, mlir-opt style.
func (p Plan) String() string {
	return p.Preset + ":" + strings.Join(p.Passes, ",")
}

// ValidatePlan checks a plan against the pass-metadata registry and
// returns the first violated constraint, or nil for a legal plan. It
// is the sampler's own acceptance test and a standalone lint for
// hand-written pipelines.
func ValidatePlan(p Plan) error {
	skel, err := PlanSkeleton(p.Preset)
	if err != nil {
		return err
	}
	inSkel := make(map[string]bool, len(skel))
	for _, s := range skel {
		inSkel[s] = true
	}
	count := make(map[string]int)
	seen := make(map[string]bool)
	for i, name := range p.Passes {
		meta, ok := planMeta[name]
		if !ok {
			return fmt.Errorf("plan: unknown pass %q at position %d", name, i)
		}
		count[name]++
		if meta.Mandatory {
			if !inSkel[name] {
				return fmt.Errorf("plan: pass %q is not part of the %s lowering skeleton", name, p.Preset)
			}
			if count[name] > 1 {
				return fmt.Errorf("plan: mandatory stage %q appears more than once", name)
			}
		} else {
			max := meta.MaxOccur
			if max <= 0 {
				max = 1
			}
			if count[name] > max {
				return fmt.Errorf("plan: pass %q appears more than %d times", name, max)
			}
			if meta.TensorOnly && !inSkel["one-shot-bufferize"] {
				return fmt.Errorf("plan: pass %q requires a tensor preset", name)
			}
		}
		for _, r := range meta.Requires {
			if inSkel[r] && !seen[r] {
				return fmt.Errorf("plan: pass %q at position %d requires %q to have run first", name, i, r)
			}
		}
		for _, inv := range meta.InvalidatedBy {
			if seen[inv] {
				return fmt.Errorf("plan: pass %q at position %d is illegal after %q", name, i, inv)
			}
		}
		if meta.FuseWith != "" {
			if i+1 >= len(p.Passes) || p.Passes[i+1] != meta.FuseWith {
				return fmt.Errorf("plan: %q must be immediately followed by %q", name, meta.FuseWith)
			}
		}
		seen[name] = true
	}
	for _, s := range skel {
		if count[s] == 0 {
			return fmt.Errorf("plan: mandatory stage %q is missing", s)
		}
	}
	return nil
}

// maxSampleRetries bounds the resampling attempts per plan slot before
// SamplePlans concedes the (astronomically large) plan space is
// exhausted for the requested count.
const maxSampleRetries = 64

// SamplePlans draws n distinct legal plans for a preset from the
// seeded generator. The result depends only on (preset, n, seed) —
// never on scheduling — and every plan passes ValidatePlan. Plan 0 is
// always the bare mandatory skeleton, so the minimal plan (and with
// it the no-arith-expand direct-lowering path) is in every sampled
// set; later plans are random insertions of optional passes at legal
// points, deduplicated by fingerprint.
func SamplePlans(preset string, n int, seed int64) ([]Plan, error) {
	skel, err := PlanSkeleton(preset)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(seed))
	plans := make([]Plan, 0, n)
	seen := make(map[uint64]bool, n)
	add := func(p Plan) bool {
		fp := p.Fingerprint()
		if seen[fp] {
			return false
		}
		seen[fp] = true
		plans = append(plans, p)
		return true
	}
	add(Plan{Preset: preset, Passes: append([]string(nil), skel...)})
	for len(plans) < n {
		ok := false
		for attempt := 0; attempt < maxSampleRetries; attempt++ {
			if add(samplePlan(preset, skel, rng)) {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("compiler: plan space for preset %q exhausted at %d distinct plans", preset, len(plans))
		}
	}
	return plans, nil
}

// occurProbs decays the chance of each further occurrence of one
// optional pass: most plans carry zero or one of each, a few carry
// stacked duplicates that exercise the idempotence claims.
var occurProbs = []float64{0.45, 0.2, 0.1}

// samplePlan draws one random legal plan: for each optional pass, a
// decaying number of occurrences, each dropped into a legal gap of the
// skeleton; same-gap contents are shuffled. Gap choice is weighted
// toward later positions (gap g has weight (g+1)²): real pipelines
// schedule cleanup passes after lowering stages rather than before
// anything has run, and later insertion points also deepen the shared
// prefixes CompilePlans compiles once.
func samplePlan(preset string, skel []string, rng *rand.Rand) Plan {
	// Gap g inserts before skel[g]; gap len(skel) appends. A gap
	// directly inside a fused pair is never legal.
	fusedGap := make(map[int]bool)
	index := make(map[string]int, len(skel))
	for i, s := range skel {
		index[s] = i
		if planMeta[s].FuseWith != "" {
			fusedGap[i+1] = true
		}
	}
	gaps := make([][]string, len(skel)+1)
	for _, name := range OptionalPasses(preset) {
		meta := planMeta[name]
		lo, hi := 0, len(skel) // legal gap window [lo, hi]
		for _, r := range meta.Requires {
			if j, ok := index[r]; ok && j+1 > lo {
				lo = j + 1
			}
		}
		for _, inv := range meta.InvalidatedBy {
			if j, ok := index[inv]; ok && j < hi {
				hi = j
			}
		}
		var legal []int
		for g := lo; g <= hi; g++ {
			if !fusedGap[g] {
				legal = append(legal, g)
			}
		}
		if len(legal) == 0 {
			continue
		}
		max := meta.MaxOccur
		if max <= 0 {
			max = 1
		}
		for k := 0; k < max; k++ {
			p := occurProbs[len(occurProbs)-1]
			if k < len(occurProbs) {
				p = occurProbs[k]
			}
			if rng.Float64() >= p {
				break
			}
			g := pickGap(legal, rng)
			gaps[g] = append(gaps[g], name)
		}
	}
	passes := make([]string, 0, len(skel)+4)
	for g := 0; g <= len(skel); g++ {
		rng.Shuffle(len(gaps[g]), func(i, j int) { gaps[g][i], gaps[g][j] = gaps[g][j], gaps[g][i] })
		passes = append(passes, gaps[g]...)
		if g < len(skel) {
			passes = append(passes, skel[g])
		}
	}
	return Plan{Preset: preset, Passes: passes}
}

// pickGap draws one gap from the legal set with weight (g+1)² on gap
// g: later insertion points are strongly preferred, earliest-gap
// insertions rare but never impossible.
func pickGap(legal []int, rng *rand.Rand) int {
	total := 0
	for _, g := range legal {
		total += (g + 1) * (g + 1)
	}
	r := rng.Intn(total)
	for _, g := range legal {
		r -= (g + 1) * (g + 1)
		if r < 0 {
			return g
		}
	}
	return legal[len(legal)-1]
}

// ShrinkPlan minimizes a plan while keep stays true: first collapse
// adjacent duplicates of idempotent passes, then greedily drop
// optional occurrences one at a time until no single removal keeps the
// property. Mandatory stages are never touched, so every candidate —
// and therefore the result — is legal by construction. keep is only
// called on candidates strictly smaller than the current plan.
func ShrinkPlan(p Plan, keep func(Plan) bool) Plan {
	cur := Plan{Preset: p.Preset, Passes: append([]string(nil), p.Passes...)}
	without := func(base Plan, i int) Plan {
		passes := make([]string, 0, len(base.Passes)-1)
		passes = append(passes, base.Passes[:i]...)
		passes = append(passes, base.Passes[i+1:]...)
		return Plan{Preset: base.Preset, Passes: passes}
	}
	// Fast path: collapse each run of an idempotent pass to length one.
	collapsed := Plan{Preset: cur.Preset}
	for i, name := range cur.Passes {
		if i > 0 && name == cur.Passes[i-1] && planMeta[name].Idempotent {
			continue
		}
		collapsed.Passes = append(collapsed.Passes, name)
	}
	if len(collapsed.Passes) < len(cur.Passes) && keep(collapsed) {
		cur = collapsed
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Passes); i++ {
			if planMeta[cur.Passes[i]].Mandatory {
				continue
			}
			if cand := without(cur, i); keep(cand) {
				cur = cand
				changed = true
				i--
			}
		}
	}
	return cur
}

// PlanTreeNodes counts the distinct prefix-tree nodes the plan set
// compiles through: the number of pass executions CompilePlans
// performs. It is at most the sum of the plans' lengths (no sharing)
// and the gap between the two is exactly the work prefix sharing
// saves.
func PlanTreeNodes(plans []Plan) int {
	nodes := make(map[string]bool)
	var prefix strings.Builder
	for _, p := range plans {
		prefix.Reset()
		for _, name := range p.Passes {
			prefix.WriteString(name)
			prefix.WriteByte(0)
			nodes[prefix.String()] = true
		}
	}
	return len(nodes)
}

// PlanSetFingerprint identifies an ordered plan set: the FNV-1a hash
// over the plans' fingerprints in order. Campaign journals record it
// so a resume under a different plan set is rejected instead of
// silently reinterpreting verdicts.
func PlanSetFingerprint(plans []Plan) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range plans {
		fp := p.Fingerprint()
		for i := 0; i < 8; i++ {
			buf[i] = byte(fp >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// CompilePlans compiles m under every given plan of one (possibly
// bug-injected) compiler build through the shared prefix tree — the
// plan-set analogue of CompileConfigs. The input module is not
// modified.
func CompilePlans(m *ir.Module, plans []Plan, bugSet bugs.Set) []ConfigResult {
	return CompilePlansOpts(m, &Options{Bugs: bugSet}, plans)
}

// CompilePlansOpts is CompilePlans with full Options control: the
// campaign engine uses it to thread its per-program context deadline
// and fault injector through every pass, and to skip the frontend
// verification it has already run in its own guarded stage.
func CompilePlansOpts(m *ir.Module, opts *Options, plans []Plan) []ConfigResult {
	if opts == nil {
		opts = &Options{}
	}
	results := make([]ConfigResult, len(plans))
	if !opts.SkipVerify {
		if err := verify.Module(m, dialects.SourceSpecs()); err != nil {
			for i := range results {
				results[i].Err = err
			}
			return results
		}
	}
	jobs := make([]treeJob, len(plans))
	for i, p := range plans {
		jobs[i] = treeJob{idx: i, passes: p.Passes}
	}
	compileTree(m, jobs, opts, results)
	return results
}
