package compiler

import (
	"ratte/internal/bugs"
	"ratte/internal/ir"
	"ratte/internal/rtval"
)

// runArithExpand is the lowering pass that expands the rounded-division
// operations (arith.ceildivsi, arith.floordivsi, arith.ceildivui) into
// basic arith operations, mirroring MLIR's arith-expand. It hosts the
// paper's two lowering bugs (7 and 8): because this pass runs at every
// optimisation level, its miscompilations are invisible to
// cross-optimisation-level differential testing.
func runArithExpand(m *ir.Module, opts *Options) error {
	for _, f := range funcsOf(m) {
		nm := newNamer(f)
		x := &expander{nm: nm, opts: opts, f: f}
		for _, r := range f.Regions {
			for _, b := range r.Blocks {
				x.block(b, constMap{})
			}
		}
	}
	return nil
}

// expander walks blocks carrying constant knowledge: like MLIR's greedy
// pattern driver, the pass *folds* an op whose operands are all known
// constants instead of expanding it — which is why constant-fed rounded
// divisions never reach the (possibly buggy) expansion at any
// optimisation level.
type expander struct {
	nm   *namer
	opts *Options
	f    *ir.Operation
}

func (x *expander) block(b *ir.Block, consts constMap) {
	var out []*ir.Operation
	for _, op := range b.Ops {
		for _, r := range op.Regions {
			for _, nb := range r.Blocks {
				x.block(nb, consts)
			}
		}
		switch op.Name {
		case "arith.floordivsi", "arith.ceildivsi", "arith.ceildivui":
			if folded, ok := x.tryFold(op, consts); ok {
				x.opts.cover(covExpandFold, op.Name)
				out = append(out, folded...)
				continue
			}
		}
		switch op.Name {
		case "arith.floordivsi":
			x.opts.cover(covExpandRewrite, op.Name)
			out = append(out, expandFloorDivSI(x.nm, op, x.opts)...)
		case "arith.ceildivsi":
			x.opts.cover(covExpandRewrite, op.Name)
			out = append(out, expandCeilDivSI(x.nm, op, x.opts)...)
		case "arith.ceildivui":
			x.opts.cover(covExpandRewrite, op.Name)
			out = append(out, expandCeilDivUI(x.nm, op)...)
		default:
			out = append(out, op)
			consts.record(op)
		}
	}
	b.Ops = out
}

// tryFold folds a rounded division over constant operands (declining on
// UB-carrying inputs, which must stay observable at run time).
func (x *expander) tryFold(op *ir.Operation, consts constMap) ([]*ir.Operation, bool) {
	a, aok := consts.lookup(op.Operands[0])
	bAttr, bok := consts.lookup(op.Operands[1])
	if !aok || !bok {
		return nil, false
	}
	t := op.Results[0].Type
	r, ok := foldBinary(op.Name, constVal(a, t), constVal(bAttr, t))
	if !ok {
		// Legality branch: a UB-carrying constant division stays
		// unfolded so the trap remains observable at run time.
		x.opts.cover(covExpandDecline, op.Name)
		return nil, false
	}
	cst := ir.NewOp("arith.constant")
	cst.Attrs.Set("value", ir.IntAttr(r.Signed(), t))
	cst.Results = []ir.Value{op.Results[0]}
	return []*ir.Operation{cst}, true
}

// emitter accumulates the replacement sequence for one expanded op.
type emitter struct {
	nm  *namer
	ops []*ir.Operation
}

func (e *emitter) constant(v int64, t ir.Type) ir.Value {
	op, res := buildConst(e.nm, v, t)
	e.ops = append(e.ops, op)
	return res
}

func (e *emitter) op1(name string, t ir.Type, operands ...ir.Value) ir.Value {
	op, res := buildOp1(e.nm, name, t, operands...)
	e.ops = append(e.ops, op)
	return res
}

func (e *emitter) cmpi(pred rtval.CmpPredicate, a, b ir.Value) ir.Value {
	op := ir.NewOp("arith.cmpi")
	op.Operands = []ir.Value{a, b}
	op.Attrs.Set("predicate", ir.IntAttr(int64(pred), ir.I64))
	res := e.nm.Value(ir.I1)
	op.Results = []ir.Value{res}
	e.ops = append(e.ops, op)
	return res
}

// bindResult aliases the expansion's final value to the original result
// ID so downstream uses are untouched.
func (e *emitter) bindResult(orig ir.Value, val ir.Value) {
	// An identity-preserving op: orig = val + 0. Canonicalize may fold
	// it later; keeping an op (rather than rewriting all uses) keeps the
	// expansion purely local, as pattern rewrites are in MLIR.
	zero := e.constant(0, orig.Type)
	op := ir.NewOp("arith.addi")
	op.Operands = []ir.Value{val, zero}
	op.Results = []ir.Value{orig}
	e.ops = append(e.ops, op)
}

// expandFloorDivSI lowers floordivsi(n, m).
//
// Correct expansion (quotient/remainder adjustment):
//
//	q = divsi(n, m); r = remsi(n, m)
//	adjust = (r != 0) && ((r < 0) != (m < 0))
//	result = adjust ? q - 1 : q
//
// Buggy expansion (bug 7, issue 83079): the historical pattern
//
//	x  = (m < 0) ? 1 : -1
//	n1 = x - n            // wraps to -2^63 for n = -2^63 + 1 (m < 0)
//	q1 = divsi(n1, m)     // -2^63 / -1: signed division overflow
//	q2 = -1 - q1
//	result = signsDiffer(n, m) && n != 0 ? q2 : divsi(n, m)
//
// whose unconditionally-computed intermediate q1 hits the overflow trap
// even though the select would not have chosen it (paper Figure 12).
func expandFloorDivSI(nm *namer, op *ir.Operation, opts *Options) []*ir.Operation {
	e := &emitter{nm: nm}
	n, m := op.Operands[0], op.Operands[1]
	t := op.Results[0].Type

	if opts.Bugs.Enabled(bugs.FloorDivSiExpand) {
		zero := e.constant(0, t)
		one := e.constant(1, t)
		negOne := e.constant(-1, t)
		mNeg := e.cmpi(rtval.CmpSLT, m, zero)
		x := e.op1("arith.select", t, mNeg, one, negOne)
		n1 := e.op1("arith.subi", t, x, n)
		q1 := e.op1("arith.divsi", t, n1, m)
		q2 := e.op1("arith.subi", t, negOne, q1)
		qTrunc := e.op1("arith.divsi", t, n, m)
		nNeg := e.cmpi(rtval.CmpSLT, n, zero)
		nPos := e.cmpi(rtval.CmpSGT, n, zero)
		mPos := e.cmpi(rtval.CmpSGT, m, zero)
		d1 := e.op1("arith.andi", ir.I1, nNeg, mPos)
		d2 := e.op1("arith.andi", ir.I1, nPos, mNeg)
		diff := e.op1("arith.ori", ir.I1, d1, d2)
		res := e.op1("arith.select", t, diff, q2, qTrunc)
		e.bindResult(op.Results[0], res)
		return e.ops
	}

	zero := e.constant(0, t)
	one := e.constant(1, t)
	q := e.op1("arith.divsi", t, n, m)
	r := e.op1("arith.remsi", t, n, m)
	rNonZero := e.cmpi(rtval.CmpNE, r, zero)
	rNeg := e.cmpi(rtval.CmpSLT, r, zero)
	mNeg := e.cmpi(rtval.CmpSLT, m, zero)
	signsDiffer := e.op1("arith.xori", ir.I1, rNeg, mNeg)
	adjust := e.op1("arith.andi", ir.I1, rNonZero, signsDiffer)
	qm1 := e.op1("arith.subi", t, q, one)
	res := e.op1("arith.select", t, adjust, qm1, q)
	e.bindResult(op.Results[0], res)
	return e.ops
}

// expandCeilDivSI lowers ceildivsi(n, m).
//
// Correct expansion:
//
//	q = divsi(n, m); r = remsi(n, m)
//	adjust = (r != 0) && ((r < 0) == (m < 0))
//	result = adjust ? q + 1 : q
//
// Buggy expansion (bug 8, issue 106519): ceil(n/m) computed as
// -floordiv(-n, m); the negation wraps for n = INT_MIN, silently
// producing a wrong value (no trap), so only DT-R can see it.
func expandCeilDivSI(nm *namer, op *ir.Operation, opts *Options) []*ir.Operation {
	e := &emitter{nm: nm}
	n, m := op.Operands[0], op.Operands[1]
	t := op.Results[0].Type

	if opts.Bugs.Enabled(bugs.CeilDivSiExpand) {
		zero := e.constant(0, t)
		one := e.constant(1, t)
		negN := e.op1("arith.subi", t, zero, n) // wraps at INT_MIN
		q := e.op1("arith.divsi", t, negN, m)
		r := e.op1("arith.remsi", t, negN, m)
		rNonZero := e.cmpi(rtval.CmpNE, r, zero)
		rNeg := e.cmpi(rtval.CmpSLT, r, zero)
		mNeg := e.cmpi(rtval.CmpSLT, m, zero)
		signsDiffer := e.op1("arith.xori", ir.I1, rNeg, mNeg)
		adjust := e.op1("arith.andi", ir.I1, rNonZero, signsDiffer)
		qm1 := e.op1("arith.subi", t, q, one)
		floor := e.op1("arith.select", t, adjust, qm1, q)
		res := e.op1("arith.subi", t, zero, floor)
		e.bindResult(op.Results[0], res)
		return e.ops
	}

	zero := e.constant(0, t)
	one := e.constant(1, t)
	q := e.op1("arith.divsi", t, n, m)
	r := e.op1("arith.remsi", t, n, m)
	rNonZero := e.cmpi(rtval.CmpNE, r, zero)
	rNeg := e.cmpi(rtval.CmpSLT, r, zero)
	mNeg := e.cmpi(rtval.CmpSLT, m, zero)
	sameSign := e.cmpi(rtval.CmpEQ, rNeg, mNeg)
	adjust := e.op1("arith.andi", ir.I1, rNonZero, sameSign)
	qp1 := e.op1("arith.addi", t, q, one)
	res := e.op1("arith.select", t, adjust, qp1, q)
	e.bindResult(op.Results[0], res)
	return e.ops
}

// expandCeilDivUI lowers ceildivui(n, m) as n == 0 ? 0 : (n-1)/m + 1.
func expandCeilDivUI(nm *namer, op *ir.Operation) []*ir.Operation {
	e := &emitter{nm: nm}
	n, m := op.Operands[0], op.Operands[1]
	t := op.Results[0].Type
	zero := e.constant(0, t)
	one := e.constant(1, t)
	nm1 := e.op1("arith.subi", t, n, one)
	q := e.op1("arith.divui", t, nm1, m)
	qp1 := e.op1("arith.addi", t, q, one)
	isZero := e.cmpi(rtval.CmpEQ, n, zero)
	res := e.op1("arith.select", t, isZero, zero, qp1)
	e.bindResult(op.Results[0], res)
	return e.ops
}
