package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ratte"
)

var update = flag.Bool("update", false, "rewrite the golden output file")

const goldenPath = "testdata/ariths-n30-seed7.golden"

// runOK drives the command in-process and returns stdout.
func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	return stdout.String()
}

// TestGoldenOutputDeterminism: with a fixed -seed the command's full
// output — the program followed by its expected-output comments — is
// byte-identical across runs and matches the committed golden file.
// Run with -update to regenerate after an intentional generator change.
func TestGoldenOutputDeterminism(t *testing.T) {
	args := []string{"-d", "ariths", "-n", "30", "-seed", "7"}
	first := runOK(t, args...)
	second := runOK(t, args...)
	if first != second {
		t.Fatal("same seed, different bytes across runs")
	}
	if !strings.Contains(first, "// expected output:") {
		t.Fatal("output misses the expected-output comment block")
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(first), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./cmd/mlir-quickcheck -update`): %v", err)
	}
	if first != string(golden) {
		t.Errorf("output drifted from golden (run with -update if intentional):\n--- golden ---\n%s--- got ---\n%s", golden, first)
	}
}

// TestGoldenOutputSelfConsistent: the printed program re-parses, and
// its reference interpretation prints exactly the expected-output
// comment block — the pair really is a ready-made differential test.
func TestGoldenOutputSelfConsistent(t *testing.T) {
	out := runOK(t, "-d", "ariths", "-n", "30", "-seed", "7")
	program, comments, ok := strings.Cut(out, "// expected output:\n")
	if !ok {
		t.Fatal("no expected-output block")
	}
	m, err := ratte.ParseModule(program)
	if err != nil {
		t.Fatalf("printed program does not parse: %v", err)
	}
	res, err := ratte.Interpret(m, "main")
	if err != nil {
		t.Fatalf("printed program not UB-free: %v", err)
	}
	var want strings.Builder
	for _, line := range strings.Split(strings.TrimRight(res.Output, "\n"), "\n") {
		want.WriteString("// " + line + "\n")
	}
	if comments != want.String() {
		t.Errorf("expected-output comments do not match the reference semantics:\n%s\nvs\n%s", comments, want.String())
	}
}

// TestCheckModeDeterministic: -check output is byte-identical for a
// fixed oracle/trials/seed, both on passing runs and on runs that find
// (and shrink) a counterexample.
func TestCheckModeDeterministic(t *testing.T) {
	pass := []string{"-check", "round-trip/ariths", "-trials", "5", "-seed", "1"}
	if a, b := runOK(t, pass...), runOK(t, pass...); a != b {
		t.Error("passing -check run not deterministic")
	}

	// A failing run: difftest/ariths is bug-free via the registry, so
	// drive the harness against the seeded corpus replayer instead —
	// replay is deterministic by construction.
	replay := []string{"-check", "replay", "-corpus", "../../testdata/regressions"}
	a := runOK(t, replay...)
	if !strings.Contains(a, "regressions replayed") {
		t.Fatalf("unexpected replay output:\n%s", a)
	}
	if b := runOK(t, replay...); a != b {
		t.Error("replay run not deterministic")
	}
}

// TestCheckModeFamilyExpansion: a bare family name runs that family's
// oracle for every preset — the spelling CI uses to gate the plan
// fuzzer without enumerating presets.
func TestCheckModeFamilyExpansion(t *testing.T) {
	out := runOK(t, "-check", "plan-legality", "-trials", "2", "-seed", "1")
	if !strings.Contains(out, "ok   4 oracles") {
		t.Errorf("family name did not expand across presets:\n%s", out)
	}
	for _, preset := range []string{"ariths", "linalggeneric", "tensor", "all"} {
		if !strings.Contains(out, "plan-legality/"+preset) {
			t.Errorf("missing %s run:\n%s", preset, out)
		}
	}
}

// TestCheckModeFlagErrors: bad oracle names and a corpus-less replay
// are usage errors (exit 2), not crashes.
func TestCheckModeFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-check", "no-such-oracle/ariths"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown oracle: want exit 2, got %d", code)
	}
	stderr.Reset()
	if code := run([]string{"-check", "no-such-family"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown family: want exit 2, got %d", code)
	}
	stderr.Reset()
	if code := run([]string{"-check", "replay"}, &stdout, &stderr); code != 2 {
		t.Errorf("replay without corpus: want exit 2, got %d", code)
	}
}
