// Command mlir-quickcheck generates random MLIR programs with Ratte's
// semantics-guided generators (or, with -smith, the MLIRSmith-style
// baseline), mirroring the paper artifact's binary of the same name.
//
// The generated program is printed to stdout; for Ratte-generated
// programs the expected execution output follows as comment lines, so
// the pair can be fed straight into a differential-testing harness:
//
//	mlir-quickcheck -d=ariths -n=30 -seed=7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ratte"
)

func main() {
	preset := flag.String("d", "ariths", "generator preset: ariths | linalggeneric | tensor")
	size := flag.Int("n", 30, "approximate number of generated fragments")
	seed := flag.Int64("seed", 0, "generation seed")
	smith := flag.Bool("smith", false, "use the MLIRSmith-style baseline generator instead")
	expected := flag.Bool("expected", true, "append the expected output as comments")
	flag.Parse()

	if *smith {
		m, err := ratte.GenerateSmith(ratte.SmithConfig{Preset: *preset, Size: *size, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlir-quickcheck:", err)
			os.Exit(1)
		}
		fmt.Print(ratte.PrintModule(m))
		fmt.Println()
		return
	}

	p, err := ratte.Generate(ratte.GenConfig{Preset: *preset, Size: *size, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlir-quickcheck:", err)
		os.Exit(1)
	}
	fmt.Print(ratte.PrintModule(p.Module))
	fmt.Println()
	if *expected {
		fmt.Println("// expected output:")
		for _, line := range strings.Split(strings.TrimRight(p.Expected, "\n"), "\n") {
			fmt.Printf("// %s\n", line)
		}
	}
}
