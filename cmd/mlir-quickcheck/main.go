// Command mlir-quickcheck generates random MLIR programs with Ratte's
// semantics-guided generators (or, with -smith, the MLIRSmith-style
// baseline), mirroring the paper artifact's binary of the same name.
//
// The generated program is printed to stdout; for Ratte-generated
// programs the expected execution output follows as comment lines, so
// the pair can be fed straight into a differential-testing harness:
//
//	mlir-quickcheck -d=ariths -n=30 -seed=7
//
// With -check the command instead drives the conformance harness
// (internal/conformance): it runs property oracles over a deterministic
// seed schedule, auto-shrinks any counterexample and can persist it
// into a regression corpus. The same engine drives CI smoke runs and
// long local campaigns:
//
//	mlir-quickcheck -check list                         # available oracles
//	mlir-quickcheck -check round-trip/ariths -trials 50
//	mlir-quickcheck -check all -trials 5 -seed 1        # CI smoke shape
//	mlir-quickcheck -check all -corpus testdata/regressions
//	mlir-quickcheck -check replay -corpus testdata/regressions
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ratte"
	"ratte/internal/profiling"
	"ratte/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command; main only binds it to the process. Output
// is deterministic for a fixed flag set (the golden-output test pins
// that), which is what makes -check usable as a CI gate.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mlir-quickcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	preset := fs.String("d", "ariths", "generator preset: ariths | linalggeneric | tensor | all")
	size := fs.Int("n", 30, "approximate number of generated fragments")
	seed := fs.Int64("seed", 0, "generation seed (with -check: base of the trial seed schedule)")
	smith := fs.Bool("smith", false, "use the MLIRSmith-style baseline generator instead")
	expected := fs.Bool("expected", true, "append the expected output as comments")
	check := fs.String("check", "", "conformance mode: an oracle name, 'all', 'list' or 'replay'")
	trials := fs.Int("trials", 25, "trials per oracle (with -check)")
	corpus := fs.String("corpus", "", "regression corpus directory: counterexamples are persisted there (with -check), and -check replay re-runs it")
	noShrink := fs.Bool("no-shrink", false, "disable counterexample minimization (with -check)")
	stopAtFirst := fs.Bool("stop-at-first", false, "stop an oracle's run at its first counterexample (with -check)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on clean shutdown")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address for the run's duration")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProfiling, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(stderr, "mlir-quickcheck:", err)
		return 1
	}
	defer func() {
		if err := stopProfiling(); err != nil {
			fmt.Fprintln(stderr, "mlir-quickcheck:", err)
		}
	}()

	if *metricsAddr != "" {
		// Long -check campaigns are the use case: the process-wide
		// default registry picks up the shared program/pipeline cache
		// gauges so a live scrape shows cache effectiveness mid-run.
		profiling.EnableContention(0, 0)
		reg := telemetry.Default()
		telemetry.RegisterProcessMetrics(reg)
		srv, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(stderr, "mlir-quickcheck:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "serving /metrics, /debug/vars, /debug/pprof on http://%s\n", srv.Addr())
	}

	if *check != "" {
		return runCheck(checkConfig{
			mode:        *check,
			trials:      *trials,
			seed:        *seed,
			corpus:      *corpus,
			noShrink:    *noShrink,
			stopAtFirst: *stopAtFirst,
		}, stdout, stderr)
	}

	if *smith {
		m, err := ratte.GenerateSmith(ratte.SmithConfig{Preset: *preset, Size: *size, Seed: *seed})
		if err != nil {
			fmt.Fprintln(stderr, "mlir-quickcheck:", err)
			return 1
		}
		fmt.Fprint(stdout, ratte.PrintModule(m))
		fmt.Fprintln(stdout)
		return 0
	}

	p, err := ratte.Generate(ratte.GenConfig{Preset: *preset, Size: *size, Seed: *seed})
	if err != nil {
		fmt.Fprintln(stderr, "mlir-quickcheck:", err)
		return 1
	}
	fmt.Fprint(stdout, ratte.PrintModule(p.Module))
	fmt.Fprintln(stdout)
	if *expected {
		fmt.Fprintln(stdout, "// expected output:")
		for _, line := range strings.Split(strings.TrimRight(p.Expected, "\n"), "\n") {
			fmt.Fprintf(stdout, "// %s\n", line)
		}
	}
	return 0
}

type checkConfig struct {
	mode        string
	trials      int
	seed        int64
	corpus      string
	noShrink    bool
	stopAtFirst bool
}

// runCheck executes the -check conformance mode.
func runCheck(cc checkConfig, stdout, stderr io.Writer) int {
	switch cc.mode {
	case "list":
		for _, name := range ratte.ConformanceOracleNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0

	case "replay":
		if cc.corpus == "" {
			fmt.Fprintln(stderr, "mlir-quickcheck: -check replay needs -corpus <dir>")
			return 2
		}
		rs, errs := ratte.ReplayRegressions(cc.corpus)
		for _, err := range errs {
			fmt.Fprintln(stdout, "FAIL", err)
		}
		if len(errs) > 0 {
			fmt.Fprintf(stdout, "FAIL corpus %s: %d of %d regressions violated\n", cc.corpus, len(errs), len(rs))
			return 1
		}
		fmt.Fprintf(stdout, "ok   corpus %s: %d regressions replayed\n", cc.corpus, len(rs))
		return 0
	}

	var oracles []ratte.ConformanceOracle
	if cc.mode == "all" {
		oracles = ratte.ConformanceOracles()
	} else if o, err := ratte.LookupConformanceOracle(cc.mode); err == nil {
		oracles = []ratte.ConformanceOracle{o}
	} else {
		// A bare family name (e.g. "plan-equivalence") selects every
		// standard oracle of that family across the presets.
		for _, o := range ratte.ConformanceOracles() {
			if strings.HasPrefix(o.Name(), cc.mode+"/") {
				oracles = append(oracles, o)
			}
		}
		if len(oracles) == 0 {
			fmt.Fprintln(stderr, "mlir-quickcheck:", err)
			return 2
		}
	}

	failed := 0
	for _, o := range oracles {
		res, err := ratte.RunConformance(o, ratte.ConformanceConfig{
			Trials:      cc.trials,
			Seed:        cc.seed,
			NoShrink:    cc.noShrink,
			CorpusDir:   cc.corpus,
			StopAtFirst: cc.stopAtFirst,
			Log:         stdout,
		})
		if err != nil {
			fmt.Fprintln(stderr, "mlir-quickcheck:", err)
			return 1
		}
		failed += len(res.Failures)
	}
	if failed > 0 {
		fmt.Fprintf(stdout, "FAIL %d counterexamples across %d oracles\n", failed, len(oracles))
		return 1
	}
	fmt.Fprintf(stdout, "ok   %d oracles, %d trials each\n", len(oracles), cc.trials)
	return 0
}
