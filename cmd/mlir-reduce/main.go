// Command mlir-reduce shrinks a bug-triggering MLIR program while its
// failure keeps reproducing — the standalone counterpart of the paper's
// test-case reduction step that produced Figures 2 and 12.
//
// The interestingness predicate is differential: the program (which
// must be statically valid and UB-free under the reference semantics)
// must keep being detected by the same oracle when compiled by the
// selected (bug-injected) compiler build:
//
//	mlir-reduce -preset ariths -bugs 7 crash.mlir > reduced.mlir
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ratte"
	"ratte/internal/bugs"
	"ratte/internal/difftest"
	"ratte/internal/ir"
	"ratte/internal/reduce"
)

func main() {
	preset := flag.String("preset", "ariths", "pipeline preset used for compilation")
	bugList := flag.String("bugs", "", "comma-separated injected bug ids the failure depends on")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := ir.Parse(src)
	if err != nil {
		fatal(err)
	}
	if err := ratte.VerifyModule(m); err != nil {
		fatal(fmt.Errorf("input must be statically valid: %w", err))
	}

	bugSet := bugs.None()
	for _, part := range strings.Split(*bugList, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			fatal(fmt.Errorf("bad bug id %q", part))
		}
		bugSet[bugs.ID(n)] = true
	}

	ref, err := ratte.Interpret(m, "main")
	if err != nil {
		fatal(fmt.Errorf("input must be UB-free under the reference semantics: %w", err))
	}
	orig := difftest.TestModule(m, ref.Output, *preset, bugSet)
	oracle := orig.Detected()
	if oracle == difftest.OracleNone {
		fatal(fmt.Errorf("input does not trigger any oracle under the selected compiler build"))
	}
	fmt.Fprintf(os.Stderr, "mlir-reduce: input triggers the %s oracle; reducing…\n", oracle)

	pred := func(c *ir.Module) bool {
		if err := ratte.VerifyModule(c); err != nil {
			return false
		}
		r, err := ratte.Interpret(c, "main")
		if err != nil {
			return false
		}
		return difftest.TestModule(c, r.Output, *preset, bugSet).Detected() == oracle
	}
	small := reduce.Module(m, pred)
	fmt.Fprintf(os.Stderr, "mlir-reduce: %d ops -> %d ops\n", m.NumOps(), small.NumOps())
	fmt.Println(ir.Print(small))
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlir-reduce:", err)
	os.Exit(1)
}
