// Command mlir-reduce shrinks a bug-triggering MLIR program while its
// failure keeps reproducing — the standalone counterpart of the paper's
// test-case reduction step that produced Figures 2 and 12.
//
// The interestingness predicate is differential: the program (which
// must be statically valid and UB-free under the reference semantics)
// must keep being detected by the same oracle when compiled by the
// selected (bug-injected) compiler build:
//
//	mlir-reduce -preset ariths -bugs 7 crash.mlir > reduced.mlir
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ratte"
	"ratte/internal/bugs"
	"ratte/internal/difftest"
	"ratte/internal/ir"
	"ratte/internal/reduce"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the whole command; main only binds it to the process (the
// end-to-end test drives run directly).
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mlir-reduce", flag.ContinueOnError)
	fs.SetOutput(stderr)
	preset := fs.String("preset", "ariths", "pipeline preset used for compilation")
	bugList := fs.String("bugs", "", "comma-separated injected bug ids the failure depends on")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	src, err := readInput(fs.Arg(0), stdin)
	if err != nil {
		return fatal(stderr, err)
	}
	m, err := ir.Parse(src)
	if err != nil {
		return fatal(stderr, err)
	}
	if err := ratte.VerifyModule(m); err != nil {
		return fatal(stderr, fmt.Errorf("input must be statically valid: %w", err))
	}

	bugSet := bugs.None()
	for _, part := range strings.Split(*bugList, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return fatal(stderr, fmt.Errorf("bad bug id %q", part))
		}
		bugSet[bugs.ID(n)] = true
	}

	ref, err := ratte.Interpret(m, "main")
	if err != nil {
		return fatal(stderr, fmt.Errorf("input must be UB-free under the reference semantics: %w", err))
	}
	orig := difftest.TestModule(m, ref.Output, *preset, bugSet)
	oracle := orig.Detected()
	if oracle == difftest.OracleNone {
		return fatal(stderr, fmt.Errorf("input does not trigger any oracle under the selected compiler build"))
	}
	fmt.Fprintf(stderr, "mlir-reduce: input triggers the %s oracle; reducing…\n", oracle)

	pred := func(c *ir.Module) bool {
		if err := ratte.VerifyModule(c); err != nil {
			return false
		}
		r, err := ratte.Interpret(c, "main")
		if err != nil {
			return false
		}
		return difftest.TestModule(c, r.Output, *preset, bugSet).Detected() == oracle
	}
	small := reduce.Module(m, pred)
	fmt.Fprintf(stderr, "mlir-reduce: %d ops -> %d ops\n", m.NumOps(), small.NumOps())
	fmt.Fprintln(stdout, ir.Print(small))
	return 0
}

func readInput(path string, stdin io.Reader) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "mlir-reduce:", err)
	return 1
}
