package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ratte"
	"ratte/internal/bugs"
	"ratte/internal/difftest"
	"ratte/internal/gen"
	"ratte/internal/ir"
	"ratte/internal/reduce"
)

// failingProgram generates a known-failing test case: with the paper's
// bug 5 injected, the ariths program at seed 23 miscompiles (DT-R).
// The conformance suite pins this seed too.
func failingProgram(t *testing.T) *gen.Program {
	t.Helper()
	p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 30, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestReduceEndToEnd drives the command exactly as a user would: a
// known-failing module goes in, a minimal still-failing module comes
// out, with the same oracle firing and validity/UB-freedom preserved.
func TestReduceEndToEnd(t *testing.T) {
	p := failingProgram(t)
	in := filepath.Join(t.TempDir(), "failing.mlir")
	if err := os.WriteFile(in, []byte(ir.Print(p.Module)), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-preset", "ariths", "-bugs", "5", in}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "triggers the DT-R oracle") {
		t.Errorf("stderr should name the detected oracle:\n%s", stderr.String())
	}

	small, err := ir.Parse(stdout.String())
	if err != nil {
		t.Fatalf("reduced output does not parse: %v\n%s", err, stdout.String())
	}
	if got, orig := small.NumOps(), p.Module.NumOps(); got >= orig {
		t.Errorf("no reduction: %d -> %d ops", orig, got)
	} else if got > 15 {
		t.Errorf("reduction not minimal enough: %d ops", got)
	}

	// The reduced module is still in the oracle's domain and still fails
	// the same way.
	if err := ratte.VerifyModule(small); err != nil {
		t.Fatalf("reduced module statically invalid: %v", err)
	}
	ref, err := ratte.Interpret(small, "main")
	if err != nil {
		t.Fatalf("reduced module not UB-free: %v", err)
	}
	rep := difftest.TestModule(small, ref.Output, "ariths", bugs.Only(bugs.MulsiExtendedI1Fold))
	if rep.Detected() != difftest.OracleDTR {
		t.Errorf("reduced module detected by %q, want DT-R", rep.Detected())
	}
	if !strings.Contains(stdout.String(), "arith.mulsi_extended") {
		t.Error("reduced module lost the trigger operation")
	}
}

// TestReducePreservesPredicateAtEveryStep instruments the same
// reduction with the reducer's trace hook and independently re-checks
// every accepted intermediate: at no step may the reducer hold a module
// that stopped triggering the oracle.
func TestReducePreservesPredicateAtEveryStep(t *testing.T) {
	p := failingProgram(t)
	bugSet := bugs.Only(bugs.MulsiExtendedI1Fold)
	pred := func(c *ir.Module) bool {
		if err := ratte.VerifyModule(c); err != nil {
			return false
		}
		r, err := ratte.Interpret(c, "main")
		if err != nil {
			return false
		}
		return difftest.TestModule(c, r.Output, "ariths", bugSet).Detected() == difftest.OracleDTR
	}
	steps := 0
	small := reduce.ModuleTrace(p.Module, pred, func(step int, m *ir.Module) {
		steps = step
		// Re-check from the printed text, independent of reducer state.
		c, err := ir.Parse(ir.Print(m))
		if err != nil {
			t.Fatalf("step %d: intermediate does not round-trip: %v", step, err)
		}
		if !pred(c) {
			t.Fatalf("step %d: predicate no longer holds on intermediate:\n%s", step, ir.Print(m))
		}
	})
	if steps == 0 {
		t.Fatal("reduction made no steps")
	}
	if small.NumOps() >= p.Module.NumOps() {
		t.Errorf("no reduction: %d -> %d ops", p.Module.NumOps(), small.NumOps())
	}
}

// TestReduceStdinAndErrors covers the command's other paths: reading
// from stdin, and the rejection of inputs that don't trigger anything.
func TestReduceStdinAndErrors(t *testing.T) {
	p := failingProgram(t)

	var stdout, stderr bytes.Buffer
	stdin := strings.NewReader(ir.Print(p.Module))
	if code := run([]string{"-preset", "ariths", "-bugs", "5", "-"}, stdin, &stdout, &stderr); code != 0 {
		t.Fatalf("stdin path: exit %d, stderr:\n%s", code, stderr.String())
	}
	if _, err := ir.Parse(stdout.String()); err != nil {
		t.Fatalf("stdin path: output does not parse: %v", err)
	}

	// Against the correct compiler nothing fires: the command must
	// refuse rather than "reduce" a healthy program.
	stdout.Reset()
	stderr.Reset()
	stdin = strings.NewReader(ir.Print(p.Module))
	if code := run([]string{"-preset", "ariths", "-"}, stdin, &stdout, &stderr); code != 1 {
		t.Fatalf("correct build: want exit 1, got %d", code)
	}
	if !strings.Contains(stderr.String(), "does not trigger any oracle") {
		t.Errorf("unexpected stderr:\n%s", stderr.String())
	}

	// Garbage input.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-"}, strings.NewReader("not mlir"), &stdout, &stderr); code != 1 {
		t.Fatalf("garbage input: want exit 1, got %d", code)
	}
}
