// Command ref-interpreter runs Ratte's composable reference semantics
// on an MLIR file in the generic textual format, mirroring the paper
// artifact's binary of the same name:
//
//	ref-interpreter -f=prog.mlir -m=main
//
// The program's printed output goes to stdout. Undefined behaviour,
// runtime traps and invalid modules are reported on stderr with a
// non-zero exit status.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ratte"
)

func main() {
	file := flag.String("f", "", "input file in the generic MLIR format (default: stdin)")
	entry := flag.String("m", "main", "entry function symbol")
	flag.Parse()

	var src []byte
	var err error
	if *file == "" || *file == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(*file)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ref-interpreter:", err)
		os.Exit(1)
	}

	m, err := ratte.ParseModule(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ref-interpreter: parse:", err)
		os.Exit(1)
	}
	if err := ratte.VerifyModule(m); err != nil {
		fmt.Fprintln(os.Stderr, "ref-interpreter:", err)
		os.Exit(1)
	}
	res, err := ratte.Interpret(m, *entry)
	if err != nil {
		switch {
		case ratte.IsUB(err):
			fmt.Fprintln(os.Stderr, "ref-interpreter: program has undefined behaviour:", err)
		case ratte.IsTrap(err):
			fmt.Fprintln(os.Stderr, "ref-interpreter: program traps:", err)
		default:
			fmt.Fprintln(os.Stderr, "ref-interpreter:", err)
		}
		os.Exit(1)
	}
	fmt.Print(res.Output)
	for _, v := range res.Returned {
		fmt.Fprintf(os.Stderr, "// returned: %s\n", v)
	}
}
