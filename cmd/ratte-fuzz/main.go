// Command ratte-fuzz drives fuzzing campaigns and regenerates the
// paper's evaluation artefacts:
//
//	ratte-fuzz -experiment=table2    # generator presets: validity rates
//	ratte-fuzz -experiment=table3    # bug-finding with injected defects
//	ratte-fuzz -experiment=table4    # MLIRSmith comparison
//	ratte-fuzz -experiment=throughput  # §4.2 generation-time comparison
//
// or ad-hoc campaigns:
//
//	ratte-fuzz -preset=ariths -programs=500 -size=30 -bugs=7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ratte"
	"ratte/internal/bugs"
	"ratte/internal/difftest"
	"ratte/internal/gen"
	"ratte/internal/ir"
	"ratte/internal/mlirsmith"
	"ratte/internal/reduce"
)

func main() {
	experiment := flag.String("experiment", "", "table2 | table3 | table4 | throughput | dol")
	preset := flag.String("preset", "ariths", "generator preset for ad-hoc campaigns")
	programs := flag.Int("programs", 200, "programs per campaign")
	size := flag.Int("size", 30, "fragments per program")
	seed := flag.Int64("seed", 1, "base seed")
	bugList := flag.String("bugs", "", "comma-separated injected bug ids")
	reduceFlag := flag.Bool("reduce", false, "reduce the first detection's test case")
	workers := flag.Int("workers", 1, "parallel campaign workers (ad-hoc mode)")
	flag.Parse()

	switch *experiment {
	case "table2":
		table2(*programs, *size, *seed)
	case "table3":
		table3(*programs, *size, *seed)
	case "table4":
		table4(*programs, *size, *seed)
	case "throughput":
		throughput(*programs, *size, *seed)
	case "dol":
		dol(*programs, *size, *seed)
	case "":
		adhoc(*preset, *programs, *size, *seed, *bugList, *reduceFlag, *workers)
	default:
		fmt.Fprintln(os.Stderr, "ratte-fuzz: unknown experiment", *experiment)
		os.Exit(1)
	}
}

// table2 re-measures the paper's Table 2 claim: every Ratte-generated
// program (per preset) compiles and is UB-free.
func table2(programs, size int, seed int64) {
	fmt.Println("Table 2 — Ratte generators: dialects, target, validity")
	fmt.Printf("%-14s %-40s %-8s %-10s %-8s\n", "Name", "Dialects", "Target", "Compiled", "UB-Free")
	dialectsOf := map[string]string{
		"ariths":        "{arith, scf, func, vector}",
		"linalggeneric": "{linalg, arith, func, vector}",
		"tensor":        "{tensor, arith, func, vector}",
	}
	for _, preset := range gen.Presets() {
		compiled, ubFree := 0, 0
		for i := 0; i < programs; i++ {
			p, err := gen.Generate(gen.Config{Preset: preset, Size: size, Seed: seed + int64(i)})
			if err != nil {
				fmt.Fprintln(os.Stderr, "generate:", err)
				os.Exit(1)
			}
			cl := difftest.Classify(p.Module, preset)
			if cl.Compiled {
				compiled++
			}
			if cl.UBFree {
				ubFree++
			}
		}
		fmt.Printf("%-14s %-40s %-8s %8.2f%% %7.2f%%\n",
			preset, dialectsOf[preset], "{llvm}",
			pct(compiled, programs), pct(ubFree, programs))
	}
}

// table3 re-runs the bug-finding experiment: one campaign per injected
// defect, reporting which oracle detected it and after how many
// programs.
func table3(programs, size int, seed int64) {
	fmt.Println("Table 3 — bugs found by differential fuzzing campaigns")
	fmt.Printf("%-3s %-13s %-11s %-22s %-12s %-8s %-22s %s\n",
		"#", "Phase", "Symptom", "Pass", "PaperOracle", "Found", "Oracles fired", "Programs")
	for _, info := range bugs.Table() {
		res, err := difftest.RunCampaign(difftest.CampaignConfig{
			Preset:   "ariths",
			Programs: programs,
			Size:     size,
			Seed:     seed + 1000*int64(info.ID),
			Bugs:     bugs.Only(info.ID),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			os.Exit(1)
		}
		found := "no"
		firstAt := "-"
		if len(res.Detections) > 0 {
			found = "yes"
			firstAt = fmt.Sprintf("first@%d", res.Detections[0].Seed-(seed+1000*int64(info.ID))+1)
		}
		var fired []string
		for o, n := range res.ByOracle {
			fired = append(fired, fmt.Sprintf("%s×%d", o, n))
		}
		fmt.Printf("%-3d %-13s %-11s %-22s %-12s %-8s %-22s %d/%d (%s)\n",
			int(info.ID), info.Phase, info.Symptom, info.Pass, info.Oracle,
			found, strings.Join(fired, " "), len(res.Detections), res.Programs, firstAt)
	}
}

// table4 re-measures the MLIRSmith comparison.
func table4(programs, size int, seed int64) {
	fmt.Println("Table 4 — compileability / UB-freeness of MLIRSmith vs Ratte")
	fmt.Printf("%-16s %-28s %-10s %-10s\n", "Generator", "Preset", "Compiled", "UB-Free")
	for _, preset := range []string{"unmod", "ariths", "linalggeneric", "tensor"} {
		compiled, ubFree := 0, 0
		for i := 0; i < programs; i++ {
			m, err := mlirsmith.Generate(mlirsmith.Config{Preset: preset, Size: size, Seed: seed + int64(i)})
			if err != nil {
				fmt.Fprintln(os.Stderr, "mlirsmith:", err)
				os.Exit(1)
			}
			cl := difftest.Classify(m, preset)
			if cl.Compiled {
				compiled++
			}
			if cl.UBFree {
				ubFree++
			}
		}
		ub := fmt.Sprintf("%.2f%%", pct(ubFree, programs))
		if preset == "unmod" {
			ub = "N/A"
		}
		fmt.Printf("%-16s %-28s %9.2f%% %10s\n", "MLIRSmith", preset, pct(compiled, programs), ub)
	}
	for _, preset := range gen.Presets() {
		compiled, ubFree := 0, 0
		for i := 0; i < programs; i++ {
			p, err := gen.Generate(gen.Config{Preset: preset, Size: size, Seed: seed + int64(i)})
			if err != nil {
				fmt.Fprintln(os.Stderr, "generate:", err)
				os.Exit(1)
			}
			cl := difftest.Classify(p.Module, preset)
			if cl.Compiled {
				compiled++
			}
			if cl.UBFree {
				ubFree++
			}
		}
		fmt.Printf("%-16s %-28s %9.2f%% %9.2f%%\n", "Ratte", preset, pct(compiled, programs), pct(ubFree, programs))
	}
}

// throughput re-measures §4.2's generation-time comparison: seconds per
// 1000 programs for Ratte (which interprets during generation) vs the
// MLIRSmith baseline (which does not).
func throughput(programs, size int, seed int64) {
	fmt.Println("§4.2 — generation throughput (normalised to 1000 programs)")
	fmt.Printf("%-14s %-14s %-14s %-8s\n", "Preset", "Ratte", "MLIRSmith", "Ratio")
	for _, preset := range gen.Presets() {
		start := time.Now()
		for i := 0; i < programs; i++ {
			if _, err := gen.Generate(gen.Config{Preset: preset, Size: size, Seed: seed + int64(i)}); err != nil {
				fmt.Fprintln(os.Stderr, "generate:", err)
				os.Exit(1)
			}
		}
		ratteTime := time.Since(start)
		start = time.Now()
		for i := 0; i < programs; i++ {
			if _, err := mlirsmith.Generate(mlirsmith.Config{Preset: preset, Size: size, Seed: seed + int64(i)}); err != nil {
				fmt.Fprintln(os.Stderr, "mlirsmith:", err)
				os.Exit(1)
			}
		}
		smithTime := time.Since(start)
		norm := func(d time.Duration) string {
			per1000 := d.Seconds() * 1000 / float64(programs)
			return fmt.Sprintf("%.2fs/1000", per1000)
		}
		fmt.Printf("%-14s %-14s %-14s %6.1fx\n", preset, norm(ratteTime), norm(smithTime),
			ratteTime.Seconds()/smithTime.Seconds())
	}
}

// dol measures the false-positive rate of plain cross-optimisation-
// level testing (no reference semantics) on a CORRECT compiler: every
// alarm is a UB-induced false positive (§4.2's usability argument).
func dol(programs, size int, seed int64) {
	fmt.Println("§4.2 — DOL-testing false positives on a correct compiler")
	fmt.Printf("%-12s %-10s %-12s %-16s\n", "Generator", "Compiled", "Alarms", "FP rate")
	compiled, alarms := 0, 0
	for i := 0; i < programs; i++ {
		p, err := gen.Generate(gen.Config{Preset: "ariths", Size: size, Seed: seed + int64(i)})
		if err != nil {
			fmt.Fprintln(os.Stderr, "generate:", err)
			os.Exit(1)
		}
		c, a := difftest.DOLAlarm(p.Module, "ariths")
		if c {
			compiled++
		}
		if a {
			alarms++
		}
	}
	fmt.Printf("%-12s %-10d %-12d %8.2f%%\n", "Ratte", compiled, alarms, pct(alarms, max(compiled, 1)))
	compiled, alarms = 0, 0
	for i := 0; i < programs; i++ {
		m, err := mlirsmith.Generate(mlirsmith.Config{Preset: "ariths", Size: size, Seed: seed + int64(i)})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlirsmith:", err)
			os.Exit(1)
		}
		c, a := difftest.DOLAlarm(m, "ariths")
		if c {
			compiled++
		}
		if a {
			alarms++
		}
	}
	fmt.Printf("%-12s %-10d %-12d %8.2f%%\n", "MLIRSmith", compiled, alarms, pct(alarms, max(compiled, 1)))
}

// adhoc runs a plain campaign.
func adhoc(preset string, programs, size int, seed int64, bugList string, doReduce bool, workers int) {
	bugSet := bugs.None()
	for _, part := range strings.Split(bugList, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratte-fuzz: bad bug id", part)
			os.Exit(1)
		}
		bugSet[bugs.ID(n)] = true
	}
	res, err := difftest.RunCampaignParallel(difftest.CampaignConfig{
		Preset:   preset,
		Programs: programs,
		Size:     size,
		Seed:     seed,
		Bugs:     bugSet,
	}, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratte-fuzz:", err)
		os.Exit(1)
	}
	fmt.Printf("programs tested: %d\ndetections: %d\n", res.Programs, len(res.Detections))
	for o, n := range res.ByOracle {
		fmt.Printf("  %s: %d\n", o, n)
	}
	if len(res.Detections) > 0 {
		d := res.Detections[0]
		fmt.Printf("first detection: seed %d via %s\n", d.Seed, d.Oracle)
		if doReduce {
			pred := func(m *ir.Module) bool {
				ref, err := ratte.Interpret(m, "main")
				if err != nil {
					return false
				}
				return difftest.TestModule(m, ref.Output, preset, bugSet).Detected() == d.Oracle
			}
			small := reduce.Module(d.Program, pred)
			fmt.Printf("reduced test case (%d ops -> %d ops):\n%s\n",
				d.Program.NumOps(), small.NumOps(), ir.Print(small))
		}
	}
}

func pct(n, total int) float64 { return 100 * float64(n) / float64(total) }
