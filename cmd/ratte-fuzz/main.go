// Command ratte-fuzz drives fuzzing campaigns and regenerates the
// paper's evaluation artefacts:
//
//	ratte-fuzz -experiment=table2    # generator presets: validity rates
//	ratte-fuzz -experiment=table3    # bug-finding with injected defects
//	ratte-fuzz -experiment=table4    # MLIRSmith comparison
//	ratte-fuzz -experiment=throughput  # §4.2 generation-time comparison
//	ratte-fuzz -experiment=dol       # §4.2 DOL false-positive study
//
// or ad-hoc campaigns:
//
//	ratte-fuzz -preset=ariths -programs=500 -size=30 -bugs=7
//
// or phase-ordering campaigns, which test every program under N
// sampled legal pass plans instead of the fixed build configurations:
//
//	ratte-fuzz -fuzz-pipelines=16 -plan-seed=1 -programs=500
//
// Every mode honours -workers=N: experiment subcommands spread their
// per-program work (generation, classification, campaigns) across N
// goroutines and ad-hoc campaigns run on the pipelined parallel
// campaign engine. Results are deterministic for a given seed
// regardless of worker count — workers change only the wall-clock time,
// mirroring the paper's overnight runs on an 8-core laptop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ratte"
	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/difftest"
	"ratte/internal/faultinject"
	"ratte/internal/gen"
	"ratte/internal/ir"
	"ratte/internal/mlirsmith"
	"ratte/internal/profiling"
	"ratte/internal/reduce"
	"ratte/internal/telemetry"
)

func main() {
	experiment := flag.String("experiment", "", "table2 | table3 | table4 | throughput | dol")
	preset := flag.String("preset", "ariths", "generator preset for ad-hoc campaigns")
	programs := flag.Int("programs", 200, "programs per campaign")
	size := flag.Int("size", 30, "fragments per program")
	seed := flag.Int64("seed", 1, "base seed")
	bugList := flag.String("bugs", "", "comma-separated injected bug ids")
	reduceFlag := flag.Bool("reduce", false, "reduce the first detection's test case")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers (all modes); defaults to GOMAXPROCS")
	journal := flag.String("journal", "", "append campaign verdicts to this JSONL file (ad-hoc campaigns)")
	resume := flag.Bool("resume", false, "resume the campaign recorded in -journal, skipping verdicted seeds")
	family := flag.Int("family", 0, "mutation-family size: test each generated program plus N-1 constant-mutated variants (ad-hoc campaigns)")
	fuzzPipelines := flag.Int("fuzz-pipelines", 0, "phase-ordering mode: test each program under N sampled legal pass plans instead of the fixed build configurations (ad-hoc campaigns)")
	planSeed := flag.Int64("plan-seed", 1, "seed of the sampled plan set (with -fuzz-pipelines)")
	batched := flag.Bool("batched", false, "share verification, compilation and interpreter compilation across each mutation family")
	timeout := flag.Duration("timeout-per-program", 0, "wall-clock budget per program (0 = unbounded)")
	faultRate := flag.Float64("fault-rate", 0, "deterministic fault-injection rate in [0,1] (robustness testing)")
	faultSeed := flag.Int64("fault-seed", 1, "seed of the injected-fault schedule")
	retries := flag.Int("retries", 2, "max retries for transiently failing programs")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on clean shutdown")
	blockprofile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file on clean shutdown")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex contention profile to this file on clean shutdown")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (ad-hoc campaigns)")
	metricsDump := flag.String("metrics-dump", "", "write the final Prometheus metrics payload to this file (ad-hoc campaigns)")
	coverage := flag.Bool("coverage", false, "record semantic coverage (generator choices, compiler rewrites, interpreted ops); observation-only, results are byte-identical")
	coverageDump := flag.String("coverage-dump", "", "write the final coverage union (site hit-counts) to this file; implies -coverage")
	progress := flag.Duration("progress", 0, "print a one-line campaign status to stderr at this interval (ad-hoc campaigns)")
	serve := flag.String("serve", "", "fleet coordinator mode: serve the campaign's shards on this address (host:port)")
	workerOf := flag.String("worker", "", "fleet worker mode: lease shards from this coordinator URL (http://host:port)")
	shardSize := flag.Int("shard-size", 0, "seeds per fleet shard (0 = auto, with -serve)")
	leaseTTL := flag.Duration("lease-ttl", 0, "fleet shard lease expiry before re-issue (0 = 15s, with -serve)")
	fleetToken := flag.String("fleet-token", "", "shared fleet secret; every request must carry it (both -serve and -worker)")
	fleetLedger := flag.String("fleet-ledger", "", "coordinator shard ledger path (with -serve; defaults to <journal>.ledger when -journal is set)")
	uploadRetries := flag.Int("upload-retries", 0, "max retries per worker upload before giving up (0 = default 5, with -worker)")
	spoolPath := flag.String("spool", "", "worker upload spool path: shard results persist locally until acknowledged (with -worker)")
	netFaultRate := flag.Float64("net-fault-rate", 0, "deterministic network fault-injection rate in [0,1] on the worker's wire (with -worker)")
	netFaultSeed := flag.Int64("net-fault-seed", 1, "seed of the injected network-fault schedule (with -net-fault-rate)")
	fleetEvents := flag.String("fleet-events", "", "append fleet lifecycle events (JSONL, keyed by campaign id) to this file (both -serve and -worker)")
	flag.Parse()
	if *coverageDump != "" {
		*coverage = true
	}

	if *workers > runtime.NumCPU() {
		// Once, to stderr: the pipelined engines cannot beat the CPU count,
		// they only add scheduling overhead past it.
		fmt.Fprintf(os.Stderr, "ratte-fuzz: warning: -workers=%d exceeds %d CPUs; extra workers add overhead without speedup\n",
			*workers, runtime.NumCPU())
	}

	stopProfiling, err := profiling.StartProfiles(profiling.Options{
		CPUPath: *cpuprofile, MemPath: *memprofile,
		BlockPath: *blockprofile, MutexPath: *mutexprofile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratte-fuzz:", err)
		os.Exit(1)
	}

	switch *experiment {
	case "table2":
		table2(*programs, *size, *seed, *workers)
	case "table3":
		table3(*programs, *size, *seed, *workers)
	case "table4":
		table4(*programs, *size, *seed, *workers)
	case "throughput":
		throughput(*programs, *size, *seed, *workers)
	case "dol":
		dol(*programs, *size, *seed, *workers)
	case "":
		o := adhocOptions{
			preset: *preset, programs: *programs, size: *size, seed: *seed,
			bugList: *bugList, doReduce: *reduceFlag, workers: *workers,
			journal: *journal, resume: *resume, timeout: *timeout,
			family: *family, batched: *batched,
			fuzzPipelines: *fuzzPipelines, planSeed: *planSeed,
			faultRate: *faultRate, faultSeed: *faultSeed, retries: *retries,
			metricsAddr: *metricsAddr, metricsDump: *metricsDump, progress: *progress,
			coverage: *coverage, coverageDump: *coverageDump,
			serve: *serve, workerOf: *workerOf, shardSize: *shardSize, leaseTTL: *leaseTTL,
			fleetToken: *fleetToken, fleetLedger: *fleetLedger,
			uploadRetries: *uploadRetries, spoolPath: *spoolPath,
			netFaultRate: *netFaultRate, netFaultSeed: *netFaultSeed,
			fleetEvents: *fleetEvents,
		}
		switch {
		case o.serve != "" && o.workerOf != "":
			fmt.Fprintln(os.Stderr, "ratte-fuzz: -serve and -worker are mutually exclusive")
			os.Exit(1)
		case o.serve != "":
			fleetServe(o)
		case o.workerOf != "":
			fleetWork(o)
		default:
			adhoc(o)
		}
	default:
		fmt.Fprintln(os.Stderr, "ratte-fuzz: unknown experiment", *experiment)
		os.Exit(1)
	}
	// Error paths above os.Exit directly and deliberately drop the
	// profile; a truncated profile of a failed run only misleads.
	if err := stopProfiling(); err != nil {
		fmt.Fprintln(os.Stderr, "ratte-fuzz:", err)
		os.Exit(1)
	}
}

// parallelMap evaluates fn(0..n-1) across the given number of worker
// goroutines and returns the results indexed by i — deterministic
// output order regardless of scheduling. workers <= 1 degenerates to a
// plain loop.
func parallelMap[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// classification is one program's Classify outcome (or a generation
// failure) from a parallel sweep.
type classification struct {
	cl  difftest.Classification
	err error
}

func tallyClassifications(cls []classification, what string) (compiled, ubFree int) {
	for _, c := range cls {
		if c.err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", what, c.err)
			os.Exit(1)
		}
		if c.cl.Compiled {
			compiled++
		}
		if c.cl.UBFree {
			ubFree++
		}
	}
	return compiled, ubFree
}

// table2 re-measures the paper's Table 2 claim: every Ratte-generated
// program (per preset) compiles and is UB-free.
func table2(programs, size int, seed int64, workers int) {
	fmt.Println("Table 2 — Ratte generators: dialects, target, validity")
	fmt.Printf("%-14s %-40s %-8s %-10s %-8s\n", "Name", "Dialects", "Target", "Compiled", "UB-Free")
	dialectsOf := map[string]string{
		"ariths":        "{arith, scf, func, vector}",
		"linalggeneric": "{linalg, arith, func, vector}",
		"tensor":        "{tensor, arith, func, vector}",
	}
	for _, preset := range gen.Presets() {
		cls := parallelMap(programs, workers, func(i int) classification {
			p, err := gen.Generate(gen.Config{Preset: preset, Size: size, Seed: seed + int64(i)})
			if err != nil {
				return classification{err: err}
			}
			return classification{cl: difftest.Classify(p.Module, preset)}
		})
		compiled, ubFree := tallyClassifications(cls, "generate")
		fmt.Printf("%-14s %-40s %-8s %8.2f%% %7.2f%%\n",
			preset, dialectsOf[preset], "{llvm}",
			pct(compiled, programs), pct(ubFree, programs))
	}
}

// table3 re-runs the bug-finding experiment: one campaign per injected
// defect, reporting which oracle detected it and after how many
// programs.
func table3(programs, size int, seed int64, workers int) {
	fmt.Println("Table 3 — bugs found by differential fuzzing campaigns")
	fmt.Printf("%-3s %-13s %-11s %-22s %-12s %-8s %-22s %s\n",
		"#", "Phase", "Symptom", "Pass", "PaperOracle", "Found", "Oracles fired", "Programs")
	for _, info := range bugs.Table() {
		res, err := difftest.RunCampaignParallel(difftest.CampaignConfig{
			Preset:   "ariths",
			Programs: programs,
			Size:     size,
			Seed:     seed + 1000*int64(info.ID),
			Bugs:     bugs.Only(info.ID),
		}, workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			os.Exit(1)
		}
		found := "no"
		firstAt := "-"
		if len(res.Detections) > 0 {
			found = "yes"
			firstAt = fmt.Sprintf("first@%d", res.Detections[0].Seed-(seed+1000*int64(info.ID))+1)
		}
		var fired []string
		for o, n := range res.ByOracle {
			fired = append(fired, fmt.Sprintf("%s×%d", o, n))
		}
		fmt.Printf("%-3d %-13s %-11s %-22s %-12s %-8s %-22s %d/%d (%s)\n",
			int(info.ID), info.Phase, info.Symptom, info.Pass, info.Oracle,
			found, strings.Join(fired, " "), len(res.Detections), res.Programs, firstAt)
	}
}

// table4 re-measures the MLIRSmith comparison.
func table4(programs, size int, seed int64, workers int) {
	fmt.Println("Table 4 — compileability / UB-freeness of MLIRSmith vs Ratte")
	fmt.Printf("%-16s %-28s %-10s %-10s\n", "Generator", "Preset", "Compiled", "UB-Free")
	for _, preset := range []string{"unmod", "ariths", "linalggeneric", "tensor"} {
		cls := parallelMap(programs, workers, func(i int) classification {
			m, err := mlirsmith.Generate(mlirsmith.Config{Preset: preset, Size: size, Seed: seed + int64(i)})
			if err != nil {
				return classification{err: err}
			}
			return classification{cl: difftest.Classify(m, preset)}
		})
		compiled, ubFree := tallyClassifications(cls, "mlirsmith")
		ub := fmt.Sprintf("%.2f%%", pct(ubFree, programs))
		if preset == "unmod" {
			ub = "N/A"
		}
		fmt.Printf("%-16s %-28s %9.2f%% %10s\n", "MLIRSmith", preset, pct(compiled, programs), ub)
	}
	for _, preset := range gen.Presets() {
		cls := parallelMap(programs, workers, func(i int) classification {
			p, err := gen.Generate(gen.Config{Preset: preset, Size: size, Seed: seed + int64(i)})
			if err != nil {
				return classification{err: err}
			}
			return classification{cl: difftest.Classify(p.Module, preset)}
		})
		compiled, ubFree := tallyClassifications(cls, "generate")
		fmt.Printf("%-16s %-28s %9.2f%% %9.2f%%\n", "Ratte", preset, pct(compiled, programs), pct(ubFree, programs))
	}
}

// throughput re-measures §4.2's generation-time comparison: seconds per
// 1000 programs for Ratte (which interprets during generation) vs the
// MLIRSmith baseline (which does not).
func throughput(programs, size int, seed int64, workers int) {
	fmt.Println("§4.2 — generation throughput (normalised to 1000 programs)")
	fmt.Printf("%-14s %-14s %-14s %-8s\n", "Preset", "Ratte", "MLIRSmith", "Ratio")
	for _, preset := range gen.Presets() {
		start := time.Now()
		errs := parallelMap(programs, workers, func(i int) error {
			_, err := gen.Generate(gen.Config{Preset: preset, Size: size, Seed: seed + int64(i)})
			return err
		})
		ratteTime := time.Since(start)
		for _, err := range errs {
			if err != nil {
				fmt.Fprintln(os.Stderr, "generate:", err)
				os.Exit(1)
			}
		}
		start = time.Now()
		errs = parallelMap(programs, workers, func(i int) error {
			_, err := mlirsmith.Generate(mlirsmith.Config{Preset: preset, Size: size, Seed: seed + int64(i)})
			return err
		})
		smithTime := time.Since(start)
		for _, err := range errs {
			if err != nil {
				fmt.Fprintln(os.Stderr, "mlirsmith:", err)
				os.Exit(1)
			}
		}
		norm := func(d time.Duration) string {
			per1000 := d.Seconds() * 1000 / float64(programs)
			return fmt.Sprintf("%.2fs/1000", per1000)
		}
		fmt.Printf("%-14s %-14s %-14s %6.1fx\n", preset, norm(ratteTime), norm(smithTime),
			ratteTime.Seconds()/smithTime.Seconds())
	}
}

// dol measures the false-positive rate of plain cross-optimisation-
// level testing (no reference semantics) on a CORRECT compiler: every
// alarm is a UB-induced false positive (§4.2's usability argument).
func dol(programs, size int, seed int64, workers int) {
	fmt.Println("§4.2 — DOL-testing false positives on a correct compiler")
	fmt.Printf("%-12s %-10s %-12s %-16s\n", "Generator", "Compiled", "Alarms", "FP rate")
	type dolResult struct {
		compiled, alarm bool
		err             error
	}
	tally := func(rs []dolResult, what string) (compiled, alarms int) {
		for _, r := range rs {
			if r.err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", what, r.err)
				os.Exit(1)
			}
			if r.compiled {
				compiled++
			}
			if r.alarm {
				alarms++
			}
		}
		return compiled, alarms
	}
	rs := parallelMap(programs, workers, func(i int) dolResult {
		p, err := gen.Generate(gen.Config{Preset: "ariths", Size: size, Seed: seed + int64(i)})
		if err != nil {
			return dolResult{err: err}
		}
		c, a := difftest.DOLAlarm(p.Module, "ariths")
		return dolResult{compiled: c, alarm: a}
	})
	compiled, alarms := tally(rs, "generate")
	fmt.Printf("%-12s %-10d %-12d %8.2f%%\n", "Ratte", compiled, alarms, pct(alarms, max(compiled, 1)))
	rs = parallelMap(programs, workers, func(i int) dolResult {
		m, err := mlirsmith.Generate(mlirsmith.Config{Preset: "ariths", Size: size, Seed: seed + int64(i)})
		if err != nil {
			return dolResult{err: err}
		}
		c, a := difftest.DOLAlarm(m, "ariths")
		return dolResult{compiled: c, alarm: a}
	})
	compiled, alarms = tally(rs, "mlirsmith")
	fmt.Printf("%-12s %-10d %-12d %8.2f%%\n", "MLIRSmith", compiled, alarms, pct(alarms, max(compiled, 1)))
}

// adhocOptions is the flag bundle of a plain campaign.
type adhocOptions struct {
	preset    string
	programs  int
	size      int
	seed      int64
	bugList   string
	doReduce  bool
	workers   int
	journal   string
	resume    bool
	timeout   time.Duration
	faultRate float64
	faultSeed int64
	retries   int
	family    int
	batched   bool

	fuzzPipelines int
	planSeed      int64

	metricsAddr string
	metricsDump string
	progress    time.Duration

	coverage     bool
	coverageDump string

	serve     string
	workerOf  string
	shardSize int
	leaseTTL  time.Duration

	fleetToken    string
	fleetLedger   string
	uploadRetries int
	spoolPath     string
	netFaultRate  float64
	netFaultSeed  int64
	fleetEvents   string
}

// buildCampaign assembles the campaign configuration shared by the
// single-process, fleet-coordinator and fleet-worker modes. The bug
// set is returned separately because the reduction path re-tests
// against it.
func buildCampaign(o adhocOptions) (difftest.CampaignConfig, bugs.Set, error) {
	bugSet := bugs.None()
	for _, part := range strings.Split(o.bugList, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return difftest.CampaignConfig{}, nil, fmt.Errorf("bad bug id %q", part)
		}
		bugSet[bugs.ID(n)] = true
	}

	cfg := difftest.CampaignConfig{
		Preset:     o.preset,
		Programs:   o.programs,
		Size:       o.size,
		Seed:       o.seed,
		Bugs:       bugSet,
		Timeout:    o.timeout,
		MaxRetries: o.retries,
		FamilySize: o.family,
		Batched:    o.batched,
	}
	if o.coverage && o.family > 0 {
		// Family mode shares one generated program across the family and
		// runs its pipeline uncovered; a coverage flag there would record
		// nothing and mislead.
		return difftest.CampaignConfig{}, nil, errors.New("-coverage is not supported with -family campaigns")
	}
	if o.fuzzPipelines > 0 {
		if o.family > 0 {
			return difftest.CampaignConfig{}, nil, errors.New("-fuzz-pipelines and -family are mutually exclusive")
		}
		plans, err := compiler.SamplePlans(o.preset, o.fuzzPipelines, o.planSeed)
		if err != nil {
			return difftest.CampaignConfig{}, nil, err
		}
		cfg.Plans = plans
	}
	if o.faultRate > 0 {
		cfg.Faults = &faultinject.Spec{
			Seed: o.faultSeed,
			Rate: o.faultRate,
			Kinds: []faultinject.Kind{
				faultinject.KindError, faultinject.KindPanic, faultinject.KindDelay,
			},
		}
	}
	return cfg, bugSet, nil
}

// adhoc runs a plain campaign: fault-isolated, optionally journaled and
// resumable, interruptible by SIGINT/SIGTERM with a graceful drain.
func adhoc(o adhocOptions) {
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "ratte-fuzz:", err)
		os.Exit(1)
	}
	cfg, bugSet, err := buildCampaign(o)
	if err != nil {
		fatal(err)
	}

	var journal *difftest.Journal
	if o.resume && o.journal == "" {
		fatal(errors.New("-resume needs -journal"))
	}
	if o.journal != "" {
		var err error
		if o.resume {
			var resumed map[int64]difftest.Verdict
			journal, resumed, err = difftest.OpenJournalForResume(o.journal, cfg)
			if err == nil {
				cfg.Resumed = resumed
				fmt.Printf("resuming: %d of %d seeds already verdicted\n", len(resumed), o.programs)
			}
		} else {
			journal, err = difftest.CreateJournal(o.journal, cfg)
		}
		if err != nil {
			fatal(err)
		}
		cfg.Journal = journal
	}
	closeJournal := func() {
		if journal == nil {
			return
		}
		if err := journal.Close(); err != nil {
			fatal(err)
		}
		journal = nil
	}

	// Telemetry is created only when some observer wants it — the
	// campaign's results are byte-identical either way, so the flags
	// only decide whether the run pays for instrument updates.
	var tel *difftest.CampaignTelemetry
	if o.metricsAddr != "" || o.metricsDump != "" || o.progress > 0 {
		tel = difftest.NewCampaignTelemetry(nil)
		telemetry.RegisterProcessMetrics(tel.Registry)
		cfg.Telemetry = tel
	}
	// Coverage rides the telemetry registry when one exists, so the
	// per-site counters show up on -metrics-addr / -metrics-dump; with
	// neither it accumulates privately for the -coverage-dump file.
	var cov *difftest.CampaignCoverage
	if o.coverage {
		var reg *telemetry.Registry
		if tel != nil {
			reg = tel.Registry
		}
		cov = difftest.NewCampaignCoverage(reg)
		cfg.Coverage = cov
	}
	var metricsSrv *telemetry.Server
	if o.metricsAddr != "" {
		// Live pprof contention endpoints need the samplers on.
		profiling.EnableContention(0, 0)
		var err error
		metricsSrv, err = telemetry.Serve(o.metricsAddr, tel.Registry)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "serving /metrics, /debug/vars, /debug/pprof on http://%s\n", metricsSrv.Addr())
	}
	if o.progress > 0 {
		ticker := time.NewTicker(o.progress)
		progressDone := make(chan struct{})
		go func() {
			for {
				select {
				case <-ticker.C:
					if line := tel.ProgressLine(); line != "" {
						fmt.Fprintln(os.Stderr, line)
					}
				case <-progressDone:
					return
				}
			}
		}()
		defer func() { ticker.Stop(); close(progressDone) }()
	}

	// SIGINT/SIGTERM cancel the campaign context: both engines drain the
	// in-flight seeds, every completed verdict is already journaled, and
	// the partial report below tells the user how far the run got.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	res, err := difftest.RunCampaignParallelCtx(ctx, cfg, o.workers)
	elapsed := time.Since(start)
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		closeJournal()
		fatal(err)
	}
	closeJournal()

	// The wrap-up runs on the interrupted path too: a drained SIGINT
	// exit reports its throughput and flushes its metrics like a clean
	// one — the whole point of the graceful drain.
	finish := func() {
		verdicted := len(res.Verdicts)
		rate := 0.0
		if elapsed > 0 {
			rate = float64(verdicted) / elapsed.Seconds()
		}
		// Runtime stats go to stderr: stdout stays byte-identical across
		// workers/telemetry settings (the CLI determinism check diffs it).
		fmt.Fprintf(os.Stderr, "elapsed: %s (%d programs, %.1f/sec)\n",
			elapsed.Round(time.Millisecond), verdicted, rate)
		if tel != nil {
			fmt.Fprint(os.Stderr, tel.ReportSection())
		}
		if cov != nil {
			fmt.Fprintf(os.Stderr, "coverage: %d sites, %d hits\n", cov.Sites(), cov.Total())
		}
		if o.coverageDump != "" {
			if err := os.WriteFile(o.coverageDump, []byte(cov.Text()), 0o644); err != nil {
				fatal(err)
			}
		}
		if o.metricsDump != "" {
			if err := os.WriteFile(o.metricsDump, []byte(tel.Registry.PrometheusText()), 0o644); err != nil {
				fatal(err)
			}
		}
		if metricsSrv != nil {
			metricsSrv.Close()
		}
	}

	fmt.Print(difftest.ReportText(res))
	finish()
	if interrupted {
		fmt.Println("interrupted: partial results above")
		if o.journal != "" {
			fmt.Printf("journal flushed; continue with: -resume -journal=%s\n", o.journal)
		}
		os.Exit(130)
	}

	if len(res.Detections) > 0 && o.doReduce {
		d := res.Detections[0]
		prog := d.Program
		if prog == nil {
			// A resumed detection carries only (seed, oracle, plan): the
			// program is regenerated from its seed.
			p, err := gen.Generate(gen.Config{Preset: o.preset, Size: o.size, Seed: d.Seed})
			if err != nil {
				fatal(err)
			}
			prog = p.Module
		}
		if len(cfg.Plans) > 0 {
			// Plan-mode finding: a (program, plan) pair, reduced on both
			// axes. The detection names its plan by key; resolve it in the
			// sampled set.
			var plan compiler.Plan
			found := false
			for _, p := range cfg.Plans {
				if p.Key() == d.Plan {
					plan, found = p, true
					break
				}
			}
			if !found {
				fatal(fmt.Errorf("detection plan %s not in the sampled set", d.Plan))
			}
			pred := func(m *ir.Module, p compiler.Plan) bool {
				ref, err := ratte.Interpret(m, "main")
				if err != nil {
					return false
				}
				rep := difftest.TestModulePlans(m, ref.Output, []compiler.Plan{p}, bugSet)
				fired, _ := rep.Detected()
				return fired == d.Oracle
			}
			small, smallPlan := reduce.ProgramPlan(prog, plan, pred)
			fmt.Printf("reduced test case (%d ops -> %d ops, plan %d -> %d passes):\n", prog.NumOps(), small.NumOps(), len(plan.Passes), len(smallPlan.Passes))
			fmt.Printf("// plan: %s\n%s\n", strings.Join(smallPlan.Passes, ","), ir.Print(small))
			return
		}
		pred := func(m *ir.Module) bool {
			ref, err := ratte.Interpret(m, "main")
			if err != nil {
				return false
			}
			return difftest.TestModule(m, ref.Output, o.preset, bugSet).Detected() == d.Oracle
		}
		small := reduce.Module(prog, pred)
		fmt.Printf("reduced test case (%d ops -> %d ops):\n%s\n",
			prog.NumOps(), small.NumOps(), ir.Print(small))
	}
}

func pct(n, total int) float64 { return 100 * float64(n) / float64(total) }
