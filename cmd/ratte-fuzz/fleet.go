// Fleet modes of ratte-fuzz: -serve runs the campaign coordinator,
// -worker runs a shard worker against one. A localhost fleet:
//
//	ratte-fuzz -serve=:7777 -programs=100000 -preset=ariths &
//	ratte-fuzz -worker=http://127.0.0.1:7777 -preset=ariths &
//	ratte-fuzz -worker=http://127.0.0.1:7777 -preset=ariths &
//
// The coordinator prints the merged report on stdout when the last
// shard lands — byte-identical to the single-process run of the same
// flags — and serves fleet gauges on its own /metrics.
package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ratte/internal/difftest"
	"ratte/internal/faultinject"
	"ratte/internal/fleet"
)

// fleetServe runs the coordinator: partition the campaign, serve
// leases on o.serve, block until the merge completes (or SIGINT
// drains), and print the merged report.
func fleetServe(o adhocOptions) {
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "ratte-fuzz:", err)
		os.Exit(1)
	}
	if o.doReduce {
		fatal(errors.New("-reduce is not supported with -serve; re-run the detection seed single-process"))
	}
	cfg, _, err := buildCampaign(o)
	if err != nil {
		fatal(err)
	}
	if o.coverage {
		// The coordinator folds merged verdict summaries into this
		// accumulator and exports the fleet coverage gauges, per-site
		// counters, and the /status growth curve from it.
		cfg.Coverage = difftest.NewCampaignCoverage(nil)
	}

	var journal *difftest.Journal
	if o.resume && o.journal == "" {
		fatal(errors.New("-resume needs -journal"))
	}
	if o.journal != "" {
		if o.resume {
			var resumed map[int64]difftest.Verdict
			journal, resumed, err = difftest.OpenJournalForResume(o.journal, cfg)
			if err == nil {
				cfg.Resumed = resumed
				fmt.Printf("resuming: %d of %d seeds already verdicted\n", len(resumed), o.programs)
			}
		} else {
			journal, err = difftest.CreateJournal(o.journal, cfg)
		}
		if err != nil {
			fatal(err)
		}
		cfg.Journal = journal
	}

	// The shard ledger rides alongside the journal by default: the pair
	// is what makes a SIGKILL'd coordinator resumable with -resume.
	ledger := o.fleetLedger
	if ledger == "" && o.journal != "" {
		ledger = o.journal + ".ledger"
	}
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Campaign:     cfg,
		ShardSize:    o.shardSize,
		LeaseTTL:     o.leaseTTL,
		Token:        o.fleetToken,
		LedgerPath:   ledger,
		ResumeLedger: o.resume,
		EventLogPath: o.fleetEvents,
	})
	if err != nil {
		fatal(err)
	}
	if err := coord.Start(o.serve); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fleet coordinator on http://%s (dashboards at /metrics and /status)\n", coord.Addr())

	if o.progress > 0 {
		ticker := time.NewTicker(o.progress)
		progressDone := make(chan struct{})
		go func() {
			for {
				select {
				case <-ticker.C:
					fmt.Fprintln(os.Stderr, coord.ProgressLine())
				case <-progressDone:
					return
				}
			}
		}()
		defer func() { ticker.Stop(); close(progressDone) }()
	}

	// SIGINT/SIGTERM freeze the merge at the contiguous prefix: every
	// merged verdict is already journaled, so the run resumes with
	// -resume exactly like an interrupted single-process campaign.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	res, err := coord.Wait(ctx)
	elapsed := time.Since(start)
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fatal(err)
	}
	coord.DrainWorkers(2 * time.Second)
	coord.Close() //nolint:errcheck // shutdown
	if journal != nil {
		if err := journal.Close(); err != nil {
			fatal(err)
		}
	}

	fmt.Print(difftest.ReportText(res))
	verdicted := len(res.Verdicts)
	rate := 0.0
	if elapsed > 0 {
		rate = float64(verdicted) / elapsed.Seconds()
	}
	fmt.Fprintf(os.Stderr, "elapsed: %s (%d programs merged, %.1f/sec aggregate)\n",
		elapsed.Round(time.Millisecond), verdicted, rate)
	if cov := coord.Coverage(); cov != nil {
		fmt.Fprintf(os.Stderr, "coverage: %d sites, %d hits\n", cov.Sites(), cov.Total())
		if o.coverageDump != "" {
			if err := os.WriteFile(o.coverageDump, []byte(cov.Text()), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	if o.metricsDump != "" {
		if err := os.WriteFile(o.metricsDump, []byte(coord.Registry().PrometheusText()), 0o644); err != nil {
			fatal(err)
		}
	}
	if interrupted {
		fmt.Println("interrupted: partial results above")
		if o.journal != "" {
			fmt.Printf("journal flushed; continue with: -resume -journal=%s\n", o.journal)
		}
		os.Exit(130)
	}
}

// fleetWork runs a worker against the coordinator at o.workerOf. The
// campaign flags must match the coordinator's (the registration
// fingerprint enforces it); -programs is taken from the coordinator.
func fleetWork(o adhocOptions) {
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "ratte-fuzz:", err)
		os.Exit(1)
	}
	switch {
	case o.journal != "" || o.resume:
		fatal(errors.New("-journal/-resume belong to the coordinator, not -worker"))
	case o.doReduce:
		fatal(errors.New("-reduce is not supported with -worker"))
	}
	cfg, _, err := buildCampaign(o)
	if err != nil {
		fatal(err)
	}
	if o.coverage {
		// A non-nil accumulator tells the worker to record coverage per
		// shard and attach the union to each upload's snapshot line.
		cfg.Coverage = difftest.NewCampaignCoverage(nil)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -net-fault-rate puts the worker's whole wire behind the seeded
	// fault transport: refused connections, delays, injected 5xx, torn
	// bodies, duplicated deliveries. Results must not change — only the
	// retry counters do.
	var client *http.Client
	if o.netFaultRate > 0 {
		tr := faultinject.NewTransport(faultinject.NetSpec{
			Seed:  o.netFaultSeed,
			Rate:  o.netFaultRate,
			Delay: 5 * time.Millisecond,
		}, nil)
		client = &http.Client{Timeout: 60 * time.Second, Transport: tr}
		fmt.Fprintf(os.Stderr, "fleet worker: injecting network faults (rate %.2f, seed %d)\n", o.netFaultRate, o.netFaultSeed)
	}

	stats, err := fleet.RunWorker(ctx, fleet.WorkerConfig{
		Coordinator:   o.workerOf,
		Campaign:      cfg,
		Workers:       o.workers,
		Token:         o.fleetToken,
		UploadRetries: o.uploadRetries,
		SpoolPath:     o.spoolPath,
		EventLogPath:  o.fleetEvents,
		Client:        client,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "fleet worker %s: interrupted after %d shards\n", stats.WorkerID, stats.Shards)
			os.Exit(130)
		}
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fleet worker %s: %d shards, %d verdicts (%d registrations, %d upload retries, %d spool replays)\n",
		stats.WorkerID, stats.Shards, stats.Verdicts, stats.Registrations, stats.UploadRetried, stats.SpoolReplayed)
}
