// Command mlir-opt runs a pass pipeline over a module in the generic
// textual format — the Ratte-Go stand-in for the production driver:
//
//	mlir-opt -p "canonicalize,arith-expand,convert-arith-to-llvm" prog.mlir
//	mlir-opt -preset ariths -O 1 prog.mlir       # a whole preset pipeline
//	mlir-opt -preset ariths -O 1 -bugs 5,7 prog.mlir  # with injected bugs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ratte"
	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/ir"
)

func main() {
	passes := flag.String("p", "", "comma-separated pass list")
	preset := flag.String("preset", "", "run a whole preset pipeline (ariths | linalggeneric | tensor)")
	level := flag.Int("O", 0, "optimisation level for -preset (0, 1 or 2)")
	bugList := flag.String("bugs", "", "comma-separated injected bug ids (1-8)")
	verifyEach := flag.Bool("verify-each", false, "verify the module after every pass")
	printAfterAll := flag.Bool("print-after-all", false, "print the IR after every pass (to stderr)")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := ir.Parse(src)
	if err != nil {
		fatal(err)
	}

	bugSet, err := parseBugs(*bugList)
	if err != nil {
		fatal(err)
	}

	var names []string
	switch {
	case *preset != "":
		names, err = compiler.PipelineFor(*preset, compiler.OptLevel(*level))
		if err != nil {
			fatal(err)
		}
	case *passes != "":
		names = strings.Split(*passes, ",")
	default:
		// No passes: verify and echo (like mlir-opt with no flags).
		if err := ratte.VerifyModule(m); err != nil {
			fatal(err)
		}
		fmt.Print(ir.Print(m))
		fmt.Println()
		return
	}

	pipe, err := compiler.NewPipeline(names...)
	if err != nil {
		fatal(err)
	}
	opts := &compiler.Options{Bugs: bugSet, VerifyBetweenPasses: *verifyEach}
	if *printAfterAll {
		opts.PrintAfterAll = os.Stderr
	}
	if err := pipe.Run(m, opts); err != nil {
		fatal(err)
	}
	fmt.Print(ir.Print(m))
	fmt.Println()
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func parseBugs(list string) (bugs.Set, error) {
	set := bugs.None()
	if list == "" {
		return set, nil
	}
	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad bug id %q", part)
		}
		if _, err := bugs.Lookup(bugs.ID(n)); err != nil {
			return nil, err
		}
		set[bugs.ID(n)] = true
	}
	return set, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlir-opt:", err)
	os.Exit(1)
}
