// A tensor/linalg program: doubles a 2x2 tensor elementwise and prints
// one element plus the whole result.
"builtin.module"() ({
  "func.func"() ({
    %t = "arith.constant"() {value = dense<[1, 2, 3, 4]> : tensor<2x2xi64>} : () -> (tensor<2x2xi64>)
    %init = "tensor.empty"() : () -> (tensor<2x2xi64>)
    %r = "linalg.generic"(%t, %init) ({
    ^bb0(%x: i64, %o: i64):
      %two = "arith.constant"() {value = 2 : i64} : () -> (i64)
      %d = "arith.muli"(%x, %two) : (i64, i64) -> (i64)
      "linalg.yield"(%d) : (i64) -> ()
    }) {
      indexing_maps = [affine_map<(d0, d1) -> (d0, d1)>, affine_map<(d0, d1) -> (d0, d1)>],
      iterator_types = ["parallel", "parallel"],
      operand_segment_sizes = [1 : i64, 1 : i64]
    } : (tensor<2x2xi64>, tensor<2x2xi64>) -> (tensor<2x2xi64>)
    %i1 = "arith.constant"() {value = 1 : index} : () -> (index)
    %e = "tensor.extract"(%r, %i1, %i1) : (tensor<2x2xi64>, index, index) -> (i64)
    "vector.print"(%e) : (i64) -> ()
    "vector.print"(%r) : (tensor<2x2xi64>) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()
