// A small arith/scf program: prints max(6*7, 40) and the comparison bit.
"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 6 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 7 : i64} : () -> (i64)
    %p = "arith.muli"(%a, %b) : (i64, i64) -> (i64)
    %forty = "arith.constant"() {value = 40 : i64} : () -> (i64)
    %c = "arith.cmpi"(%p, %forty) {predicate = 4 : i64} : (i64, i64) -> (i1)
    %m = "scf.if"(%c) ({
      "scf.yield"(%p) : (i64) -> ()
    }, {
      "scf.yield"(%forty) : (i64) -> ()
    }) : (i1) -> (i64)
    "vector.print"(%m) : (i64) -> ()
    "vector.print"(%c) : (i1) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()
