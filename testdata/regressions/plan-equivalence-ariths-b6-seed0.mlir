// ratte-regression v1
// oracle: plan-equivalence/ariths
// seed: 0
// bugs: 6
// fires: DT-R
// plan: convert-scf-to-cf,convert-arith-to-llvm,convert-vector-to-llvm,convert-func-to-llvm
// detail: DT-R fired under plan [convert-scf-to-cf convert-arith-to-llvm convert-vector-to-llvm convert-func-to-llvm]
"builtin.module"() ({
  ^bb0:
    "func.func"() ({
      ^bb0:
        %a, %b = "func.call"() {callee = @c} : () -> (i64, i64)
        %q = "arith.ceildivsi"(%a, %b) : (i64, i64) -> (i64)
        "vector.print"(%q) : (i64) -> ()
        "func.return"() : () -> ()
    }) {sym_name = "main", function_type = () -> ()} : () -> ()
    "func.func"() ({
      ^bb0:
        %a = "arith.constant"() {value = -6 : i64} : () -> (i64)
        %b = "arith.constant"() {value = 2 : i64} : () -> (i64)
        "func.return"(%a, %b) : (i64, i64) -> ()
    }) {sym_name = "c", function_type = () -> (i64, i64)} : () -> ()
}) : () -> ()