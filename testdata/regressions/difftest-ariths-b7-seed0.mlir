// ratte-regression v1
// oracle: difftest/ariths
// seed: 0
// bugs: 7
// fires: NC
// detail: NC fired under build configs [O0:crash O1:ok O2:ok O1-noexpand:ok]
"builtin.module"() ({
  ^bb0:
    "func.func"() ({
      ^bb0:
        %cm, %cn1 = "func.call"() {callee = @func1} : () -> (i64, i64)
        %1 = "arith.floordivsi"(%cm, %cn1) : (i64, i64) -> (i64)
        "func.return"() : () -> ()
    }) {sym_name = "main", function_type = () -> ()} : () -> ()
    "func.func"() ({
      ^bb0:
        %cm = "arith.constant"() {value = -9223372036854775807 : i64} : () -> (i64)
        %cn1 = "arith.constant"() {value = -1 : i64} : () -> (i64)
        "func.return"(%cm, %cn1) : (i64, i64) -> ()
    }) {sym_name = "func1", function_type = () -> (i64, i64)} : () -> ()
}) : () -> ()