// ratte-regression v1
// oracle: difftest/ariths
// seed: 0
// bugs: 3
// fires: NC
// detail: NC fired under build configs [O0:ok O1:ok O2:reject O1-noexpand:ok]
"builtin.module"() ({
  ^bb0:
    "func.func"() ({
      ^bb0:
        %a, %b = "func.call"() {callee = @pair} : () -> (i64, i64)
        "func.return"() : () -> ()
    }) {sym_name = "main", function_type = () -> ()} : () -> ()
    "func.func"() ({
      ^bb0:
        %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
        %b = "arith.constant"() {value = 2 : i64} : () -> (i64)
        "func.return"(%a, %b) : (i64, i64) -> ()
    }) {sym_name = "pair", function_type = () -> (i64, i64)} : () -> ()
}) : () -> ()