// ratte-regression v1
// oracle: difftest/ariths
// seed: 0
// bugs: 5
// fires: DT-R
// detail: DT-R fired under build configs [O0:ok O1:wrong-output O2:wrong-output O1-noexpand:wrong-output]
"builtin.module"() ({
  ^bb0:
    "func.func"() ({
      ^bb0:
        %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
        %0 = "func.call"() {callee = @one} : () -> (i1)
        %low, %high = "arith.mulsi_extended"(%0, %n1) : (i1, i1) -> (i1, i1)
        "vector.print"(%high) : (i1) -> ()
        "func.return"() : () -> ()
    }) {sym_name = "main", function_type = () -> ()} : () -> ()
    "func.func"() ({
      ^bb0:
        %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
        "func.return"(%n1) : (i1) -> ()
    }) {sym_name = "one", function_type = () -> (i1)} : () -> ()
}) : () -> ()