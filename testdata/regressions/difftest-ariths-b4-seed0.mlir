// ratte-regression v1
// oracle: difftest/ariths
// seed: 0
// bugs: 4
// fires: NC
// detail: NC fired under build configs [O0:reject O1:ok O2:ok O1-noexpand:ok]
"builtin.module"() ({
  ^bb0:
    "func.func"() ({
      ^bb0:
        %a, %b = "func.call"() {callee = @c} : () -> (i1, i1)
        %s, %o = "arith.addui_extended"(%a, %b) : (i1, i1) -> (i1, i1)
        "func.return"() : () -> ()
    }) {sym_name = "main", function_type = () -> ()} : () -> ()
    "func.func"() ({
      ^bb0:
        %a = "arith.constant"() {value = -1 : i1} : () -> (i1)
        "func.return"(%a, %a) : (i1, i1) -> ()
    }) {sym_name = "c", function_type = () -> (i1, i1)} : () -> ()
}) : () -> ()