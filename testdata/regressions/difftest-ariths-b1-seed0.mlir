// ratte-regression v1
// oracle: difftest/ariths
// seed: 0
// bugs: 1
// fires: DT-R
// detail: DT-R fired under build configs [O0:ok O1:wrong-output O2:wrong-output O1-noexpand:wrong-output]
"builtin.module"() ({
  ^bb0:
    "func.func"() ({
      ^bb0:
        %a = "arith.constant"() {value = -1 : i8} : () -> (i8)
        %i = "arith.index_castui"(%a) : (i8) -> (index)
        "vector.print"(%i) : (index) -> ()
        "func.return"() : () -> ()
    }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()