// ratte-regression v1
// oracle: difftest/ariths
// seed: 0
// bugs: 8
// fires: DT-R
// detail: DT-R fired under build configs [O0:wrong-output O1:wrong-output O2:wrong-output O1-noexpand:ok]
"builtin.module"() ({
  ^bb0:
    "func.func"() ({
      ^bb0:
        %a, %b = "func.call"() {callee = @c} : () -> (i8, i8)
        %q = "arith.ceildivsi"(%a, %b) : (i8, i8) -> (i8)
        "vector.print"(%q) : (i8) -> ()
        "func.return"() : () -> ()
    }) {sym_name = "main", function_type = () -> ()} : () -> ()
    "func.func"() ({
      ^bb0:
        %a = "arith.constant"() {value = -128 : i8} : () -> (i8)
        %b = "arith.constant"() {value = 3 : i8} : () -> (i8)
        "func.return"(%a, %b) : (i8, i8) -> ()
    }) {sym_name = "c", function_type = () -> (i8, i8)} : () -> ()
}) : () -> ()