// ratte-regression v1
// oracle: difftest/ariths
// seed: 0
// bugs: 2
// fires: DT-R
// detail: DT-R fired under build configs [O0:ok O1:wrong-output O2:wrong-output O1-noexpand:wrong-output]
"builtin.module"() ({
  ^bb0:
    "func.func"() ({
      ^bb0:
        %big = "func.call"() {callee = @c} : () -> (index)
        %n = "arith.index_cast"(%big) : (index) -> (i8)
        %back = "arith.index_cast"(%n) : (i8) -> (index)
        "vector.print"(%back) : (index) -> ()
        "func.return"() : () -> ()
    }) {sym_name = "main", function_type = () -> ()} : () -> ()
    "func.func"() ({
      ^bb0:
        %a = "arith.constant"() {value = 300 : index} : () -> (index)
        "func.return"(%a) : (index) -> ()
    }) {sym_name = "c", function_type = () -> (index)} : () -> ()
}) : () -> ()