// Bug 3 (issue 82788): remove-dead-values wrongly rejects a valid
// module containing a func.call with an unused result.
// Symptom: compile-time rejection at O2. Oracle: NC.
"builtin.module"() ({
  "func.func"() ({
    %a, %b = "func.call"() {callee = @pair} : () -> (i64, i64)
    "vector.print"(%a) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 2 : i64} : () -> (i64)
    "func.return"(%a, %b) : (i64, i64) -> ()
  }) {sym_name = "pair", function_type = () -> (i64, i64)} : () -> ()
}) : () -> ()
