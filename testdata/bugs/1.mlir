// Bug 1 (issue 90238): canonicalize folds arith.index_castui over a
// constant with sign extension instead of zero extension.
// Expected output: 255. Buggy output at O1+: -1. Oracle: DT-R.
"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = -1 : i8} : () -> (i8)
    %i = "arith.index_castui"(%a) : (i8) -> (index)
    "vector.print"(%i) : (index) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()
