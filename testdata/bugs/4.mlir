// Bug 4 (issue 84986): convert-arith-to-llvm fails to legalize
// arith.addui_extended over i1 operands and rejects the module.
// Symptom: compile-time rejection. Oracle: NC.
"builtin.module"() ({
  "func.func"() ({
    %a, %b = "func.call"() {callee = @c} : () -> (i1, i1)
    %s, %o = "arith.addui_extended"(%a, %b) : (i1, i1) -> (i1, i1)
    "vector.print"(%s) : (i1) -> ()
    "vector.print"(%o) : (i1) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = -1 : i1} : () -> (i1)
    "func.return"(%a, %a) : (i1, i1) -> ()
  }) {sym_name = "c", function_type = () -> (i1, i1)} : () -> ()
}) : () -> ()
