// Bug 5 (issue 88732, paper Figure 2): canonicalize's i1 special case
// for arith.mulsi_extended replaces the high result with the low
// result. -1 x -1 on i1 has low = 1 (prints -1) and high = 0; the bug
// makes high print -1. Oracle: DT-R.
"builtin.module"() ({
  "func.func"() ({
    %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
    %0 = "func.call"() {callee = @one} : () -> (i1)
    %low, %high = "arith.mulsi_extended"(%0, %n1) : (i1, i1) -> (i1, i1)
    "vector.print"(%low) : (i1) -> ()
    "vector.print"(%high) : (i1) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
    "func.return"(%n1) : (i1) -> ()
  }) {sym_name = "one", function_type = () -> (i1)} : () -> ()
}) : () -> ()
