// Bug 7 (issue 83079, paper Figure 12): the arith-expand floordivsi
// expansion computes the intermediate (x - n) / m unconditionally; for
// n = -2^63 + 1, m = -1 that divides -2^63 by -1, which traps at the
// llvm level. Expected output: 9223372036854775807. Oracle: NC.
"builtin.module"() ({
  "func.func"() ({
    %cm, %cn1 = "func.call"() {callee = @func1} : () -> (i64, i64)
    %1 = "arith.floordivsi"(%cm, %cn1) : (i64, i64) -> (i64)
    "vector.print"(%1) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %cm = "arith.constant"() {value = -9223372036854775807 : i64} : () -> (i64)
    %cn1 = "arith.constant"() {value = -1 : i64} : () -> (i64)
    "func.return"(%cm, %cn1) : (i64, i64) -> ()
  }) {sym_name = "func1", function_type = () -> (i64, i64)} : () -> ()
}) : () -> ()
