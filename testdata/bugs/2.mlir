// Bug 2 (issue 90296): canonicalize folds the chain
// index_cast(index_cast(x : index -> i8) : i8 -> index) to x, dropping
// the truncation. Expected output: 44 (300 mod 256). Buggy: 300.
// Oracle: DT-R.
"builtin.module"() ({
  "func.func"() ({
    %big = "func.call"() {callee = @c} : () -> (index)
    %n = "arith.index_cast"(%big) : (index) -> (i8)
    %back = "arith.index_cast"(%n) : (i8) -> (index)
    "vector.print"(%back) : (index) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = 300 : index} : () -> (index)
    "func.return"(%a) : (index) -> ()
  }) {sym_name = "c", function_type = () -> (index)} : () -> ()
}) : () -> ()
