// Bug 6 (issue 89382): convert-arith-to-llvm's direct ceildivsi
// conversion uses the positive-only formula (a + b - 1) / b.
// ceil(-6 / 2) = -3; the buggy conversion computes -2. Exercised by the
// lowering strategy without arith-expand. Oracle: DT-R.
"builtin.module"() ({
  "func.func"() ({
    %a, %b = "func.call"() {callee = @c} : () -> (i64, i64)
    %q = "arith.ceildivsi"(%a, %b) : (i64, i64) -> (i64)
    "vector.print"(%q) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = -6 : i64} : () -> (i64)
    %b = "arith.constant"() {value = 2 : i64} : () -> (i64)
    "func.return"(%a, %b) : (i64, i64) -> ()
  }) {sym_name = "c", function_type = () -> (i64, i64)} : () -> ()
}) : () -> ()
