// Bug 8 (issue 106519): the arith-expand ceildivsi expansion computes
// -floordiv(-a, b); the negation wraps at a = INT_MIN, silently
// producing a wrong value. ceil(-128 / 3) on i8 = -42; the buggy
// expansion computes 43. Oracle: DT-R.
"builtin.module"() ({
  "func.func"() ({
    %a, %b = "func.call"() {callee = @c} : () -> (i8, i8)
    %q = "arith.ceildivsi"(%a, %b) : (i8, i8) -> (i8)
    "vector.print"(%q) : (i8) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = -128 : i8} : () -> (i8)
    %b = "arith.constant"() {value = 3 : i8} : () -> (i8)
    "func.return"(%a, %b) : (i8, i8) -> ()
  }) {sym_name = "c", function_type = () -> (i8, i8)} : () -> ()
}) : () -> ()
