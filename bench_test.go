// Benchmarks regenerating every table and figure of the paper's
// evaluation (the experiment index of DESIGN.md §4). Each benchmark
// reports the paper-comparable quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the evaluation's rows. EXPERIMENTS.md records one run's
// paper-vs-measured comparison.
package ratte_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"ratte"
	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/difftest"
	"ratte/internal/fleet"
	"ratte/internal/gen"
	"ratte/internal/mlirsmith"
)

// BenchmarkTable2_Generators — paper Table 2: the three semantics-guided
// generator presets. Each iteration generates one program and verifies
// it compiles and is UB-free (both must be 100%; the benchmark fails
// otherwise). The ns/op figure is the per-program generation+check cost.
func BenchmarkTable2_Generators(b *testing.B) {
	for _, preset := range gen.Presets() {
		preset := preset
		b.Run(preset, func(b *testing.B) {
			compiled, ubFree := 0, 0
			for i := 0; i < b.N; i++ {
				p, err := gen.Generate(gen.Config{Preset: preset, Size: 30, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				cl := difftest.Classify(p.Module, preset)
				if cl.Compiled {
					compiled++
				}
				if cl.UBFree {
					ubFree++
				}
			}
			if compiled != b.N || ubFree != b.N {
				b.Fatalf("Ratte %s: %d/%d compiled, %d/%d UB-free — paper requires 100%%",
					preset, compiled, b.N, ubFree, b.N)
			}
			b.ReportMetric(100, "compiled%")
			b.ReportMetric(100, "ubfree%")
		})
	}
}

// BenchmarkTable3_BugFinding — paper Table 3: one campaign per injected
// bug, stopping at first detection. Reports the number of programs
// needed to detect each bug (the campaign cost the paper pays with
// overnight runs on a laptop).
func BenchmarkTable3_BugFinding(b *testing.B) {
	for _, info := range bugs.Table() {
		info := info
		b.Run(info.Pass+"_"+info.DetectedWith, func(b *testing.B) {
			totalPrograms := 0
			detected := 0
			for i := 0; i < b.N; i++ {
				res, err := difftest.RunCampaign(difftest.CampaignConfig{
					Preset:      "ariths",
					Programs:    2000,
					Size:        30,
					Seed:        int64(i+1) * 10_000 * int64(info.ID),
					Bugs:        bugs.Only(info.ID),
					StopAtFirst: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				totalPrograms += res.Programs
				if len(res.Detections) > 0 {
					detected++
				}
			}
			if detected != b.N {
				b.Fatalf("bug %d detected in only %d/%d campaigns", info.ID, detected, b.N)
			}
			b.ReportMetric(float64(totalPrograms)/float64(b.N), "programs/detect")
		})
	}
}

// BenchmarkTable4_MLIRSmith — paper Table 4: compileability and
// UB-freeness of the MLIRSmith baseline per preset, reported as
// percentage metrics (paper: ariths 100%/1.1%, linalg 6.9%/N/A,
// tensor 99.4%/0%, unmod 7.8%/N/A).
func BenchmarkTable4_MLIRSmith(b *testing.B) {
	for _, preset := range mlirsmith.Presets() {
		preset := preset
		b.Run(preset, func(b *testing.B) {
			compiled, ubFree := 0, 0
			for i := 0; i < b.N; i++ {
				m, err := mlirsmith.Generate(mlirsmith.Config{Preset: preset, Size: 20, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				cl := difftest.Classify(m, preset)
				if cl.Compiled {
					compiled++
				}
				if cl.UBFree {
					ubFree++
				}
			}
			b.ReportMetric(100*float64(compiled)/float64(b.N), "compiled%")
			b.ReportMetric(100*float64(ubFree)/float64(b.N), "ubfree%")
		})
	}
}

// BenchmarkThroughput_Ratte / BenchmarkThroughput_MLIRSmith — §4.2's
// generation-time comparison (paper: 1000 programs in 191/193/196s for
// Ratte vs 67/59/82s for MLIRSmith; the *shape* is Ratte ≈2.5–3×
// slower, because it interprets during generation).
func BenchmarkThroughput_Ratte(b *testing.B) {
	for _, preset := range gen.Presets() {
		preset := preset
		b.Run(preset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gen.Generate(gen.Config{Preset: preset, Size: 50, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkThroughput_MLIRSmith(b *testing.B) {
	for _, preset := range []string{"ariths", "linalggeneric", "tensor"} {
		preset := preset
		b.Run(preset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mlirsmith.Generate(mlirsmith.Config{Preset: preset, Size: 50, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

const benchFigure2 = `"builtin.module"() ({
  "func.func"() ({
    %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
    %0 = "func.call"() {callee = @one} : () -> (i1)
    %low, %high = "arith.mulsi_extended"(%0, %n1) : (i1, i1) -> (i1, i1)
    "vector.print"(%low) : (i1) -> ()
    "vector.print"(%high) : (i1) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
    "func.return"(%n1) : (i1) -> ()
  }) {sym_name = "one", function_type = () -> (i1)} : () -> ()
}) : () -> ()`

// BenchmarkFigure2_DifferentialTest — paper Figure 2: the i1
// mulsi_extended miscompilation, detected by DT-R on every iteration.
func BenchmarkFigure2_DifferentialTest(b *testing.B) {
	m, err := ratte.ParseModule(benchFigure2)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := ratte.Interpret(m, "main")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := ratte.Test(m, ref.Output, "ariths", ratte.Bugs(bugs.MulsiExtendedI1Fold))
		if rep.Detected() != ratte.OracleDTR {
			b.Fatalf("Figure 2 bug not detected by DT-R: %v", rep.Detected())
		}
	}
}

const benchFigure12 = `"builtin.module"() ({
  "func.func"() ({
    %cm, %cn1 = "func.call"() {callee = @func1} : () -> (i64, i64)
    %1 = "arith.floordivsi"(%cm, %cn1) : (i64, i64) -> (i64)
    "vector.print"(%1) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %cm = "arith.constant"() {value = -9223372036854775807 : i64} : () -> (i64)
    %cn1 = "arith.constant"() {value = -1 : i64} : () -> (i64)
    "func.return"(%cm, %cn1) : (i64, i64) -> ()
  }) {sym_name = "func1", function_type = () -> (i64, i64)} : () -> ()
}) : () -> ()`

// BenchmarkFigure12_DifferentialTest — paper Figure 12: the floordivsi
// lowering bug, observed as a crash (NC) on every iteration.
func BenchmarkFigure12_DifferentialTest(b *testing.B) {
	m, err := ratte.ParseModule(benchFigure12)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := ratte.Interpret(m, "main")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := ratte.Test(m, ref.Output, "ariths", ratte.Bugs(bugs.FloorDivSiExpand))
		if rep.Detected() != ratte.OracleNC {
			b.Fatalf("Figure 12 bug not detected by NC: %v", rep.Detected())
		}
	}
}

// BenchmarkReferenceInterpreter measures the §3.5 reference interpreter
// on a generated program (the per-program cost the generator pays to be
// UB-free).
func BenchmarkReferenceInterpreter(b *testing.B) {
	for _, preset := range gen.Presets() {
		preset := preset
		b.Run(preset, func(b *testing.B) {
			p, err := gen.Generate(gen.Config{Preset: preset, Size: 40, Seed: 11})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ratte.Interpret(p.Module, "main"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_RejectionSampling quantifies the paper's §3 design
// argument: obtaining ONE differential-testing-usable program (compiles
// and UB-free) by rejection-sampling a grammar-level generator costs
// many attempts, whereas the incremental semantics-guided generator
// needs exactly one. Reported metric: attempts per usable program.
func BenchmarkAblation_RejectionSampling(b *testing.B) {
	b.Run("mlirsmith_reject", func(b *testing.B) {
		attempts := 0
		seed := int64(0)
		for i := 0; i < b.N; i++ {
			for {
				attempts++
				m, err := mlirsmith.Generate(mlirsmith.Config{Preset: "ariths", Size: 30, Seed: seed})
				seed++
				if err != nil {
					b.Fatal(err)
				}
				cl := difftest.Classify(m, "ariths")
				if cl.Compiled && cl.UBFree {
					break
				}
			}
		}
		b.ReportMetric(float64(attempts)/float64(b.N), "attempts/valid")
	})
	b.Run("ratte_incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 30, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			cl := difftest.Classify(p.Module, "ariths")
			if !cl.Compiled || !cl.UBFree {
				b.Fatal("semantics-guided generation produced an unusable program")
			}
		}
		b.ReportMetric(1, "attempts/valid")
	})
}

// BenchmarkCampaignSerial measures the end-to-end campaign engine:
// generate one program, compile it under every build configuration
// (sharing the common lowering prefix), execute, and compare against
// the reference output. ns/op is the per-program campaign cost;
// programs/sec is the fuzzing throughput a single worker sustains.
func BenchmarkCampaignSerial(b *testing.B) {
	start := time.Now()
	res, err := difftest.RunCampaign(difftest.CampaignConfig{
		Preset:   "ariths",
		Programs: b.N,
		Size:     30,
		Seed:     1,
		Bugs:     bugs.None(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if res.Programs != b.N {
		b.Fatalf("campaign tested %d programs, want %d", res.Programs, b.N)
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "programs/sec")
}

// BenchmarkCampaignParallel measures the pipelined parallel campaign
// engine at 8 workers over the same workload as BenchmarkCampaignSerial.
// On multi-core hosts programs/sec scales with cores; on a single core
// it stays within a few percent of serial (pipelining overhead only).
func BenchmarkCampaignParallel(b *testing.B) {
	start := time.Now()
	res, err := difftest.RunCampaignParallel(difftest.CampaignConfig{
		Preset:   "ariths",
		Programs: b.N,
		Size:     30,
		Seed:     1,
		Bugs:     bugs.None(),
	}, 8)
	if err != nil {
		b.Fatal(err)
	}
	if res.Programs != b.N {
		b.Fatalf("campaign tested %d programs, want %d", res.Programs, b.N)
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "programs/sec")
}

// TestEmitCampaignBench regenerates BENCH_campaign.json, the
// machine-readable record of campaign-engine throughput. It is skipped
// unless RATTE_BENCH_JSON=1, because a timing run has no place in the
// ordinary test suite:
//
//	RATTE_BENCH_JSON=1 go test -run TestEmitCampaignBench -v .
func TestEmitCampaignBench(t *testing.T) {
	if os.Getenv("RATTE_BENCH_JSON") != "1" {
		t.Skip("set RATTE_BENCH_JSON=1 to regenerate BENCH_campaign.json")
	}
	const programs = 300
	run := func(workers int, withTelemetry, withCoverage bool) (nsPerProgram float64, programsPerSec float64) {
		cfg := difftest.CampaignConfig{
			Preset:   "ariths",
			Programs: programs,
			Size:     30,
			Seed:     1,
			Bugs:     bugs.None(),
		}
		if withTelemetry {
			cfg.Telemetry = difftest.NewCampaignTelemetry(nil)
		}
		if withCoverage {
			cfg.Coverage = difftest.NewCampaignCoverage(nil)
		}
		start := time.Now()
		res, err := difftest.RunCampaignParallel(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if res.Programs != programs {
			t.Fatalf("campaign tested %d programs, want %d", res.Programs, programs)
		}
		elapsed := time.Since(start)
		return float64(elapsed.Nanoseconds()) / programs, programs / elapsed.Seconds()
	}
	// Family-campaign throughput: the same program budget spent as
	// mutation families, batched (one compile per family per config)
	// against unbatched (full pipeline per member). The batched/unbatched
	// ratio is the compile-amortization payoff.
	runFamily := func(workers int, batched bool) (nsPerProgram float64, programsPerSec float64) {
		cfg := difftest.CampaignConfig{
			Preset:     "ariths",
			Programs:   programs,
			Size:       30,
			Seed:       1,
			Bugs:       bugs.None(),
			FamilySize: 4,
			Batched:    batched,
		}
		start := time.Now()
		res, err := difftest.RunCampaignParallel(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if res.Programs != programs {
			t.Fatalf("family campaign tested %d programs, want %d", res.Programs, programs)
		}
		elapsed := time.Since(start)
		return float64(elapsed.Nanoseconds()) / programs, programs / elapsed.Seconds()
	}
	// Pipeline-fuzz compile sharing: one program compiled under N
	// sampled legal plans through the shared prefix tree, against the
	// naive baseline of N independent compiles (one full
	// verify+pipeline run per plan). The ratio is the prefix-sharing
	// payoff the -fuzz-pipelines campaign banks on every program.
	runPlans := func(nPlans int) (sharedNs, naiveNs float64) {
		plans, err := compiler.SamplePlans("ariths", nPlans, 1)
		if err != nil {
			t.Fatal(err)
		}
		const planProgs = 60
		mods := make([]*ratte.Module, planProgs)
		for i := range mods {
			p, err := gen.Generate(gen.Config{Preset: "ariths", Size: 30, Seed: int64(i)})
			if err != nil {
				t.Fatal(err)
			}
			mods[i] = p.Module
		}
		check := func(outs []compiler.ConfigResult) {
			for _, out := range outs {
				if out.Err != nil {
					t.Fatal(out.Err)
				}
			}
		}
		// Best-of-N timing: single-shot wall-clock measurements of a
		// ~100ms workload are dominated by scheduler noise; the minimum
		// over a few alternating repetitions is the standard low-noise
		// estimate and is fair to both sides.
		const reps = 5
		best := func(d, prev time.Duration) time.Duration {
			if prev == 0 || d < prev {
				return d
			}
			return prev
		}
		var shared, naive time.Duration
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			for _, m := range mods {
				check(compiler.CompilePlans(m, plans, nil))
			}
			shared = best(time.Since(start), shared)
			start = time.Now()
			for _, m := range mods {
				for _, p := range plans {
					check(compiler.CompilePlans(m, []compiler.Plan{p}, nil))
				}
			}
			naive = best(time.Since(start), naive)
		}
		return float64(shared.Nanoseconds()) / planProgs, float64(naive.Nanoseconds()) / planProgs
	}
	// Plan-mode campaign throughput at the default -fuzz-pipelines=16.
	runPlanCampaign := func(workers int) (nsPerProgram float64, programsPerSec float64) {
		plans, err := compiler.SamplePlans("ariths", 16, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := difftest.CampaignConfig{
			Preset:   "ariths",
			Programs: programs,
			Size:     30,
			Seed:     1,
			Bugs:     bugs.None(),
			Plans:    plans,
		}
		start := time.Now()
		res, err := difftest.RunCampaignParallel(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if res.Programs != programs {
			t.Fatalf("plan campaign tested %d programs, want %d", res.Programs, programs)
		}
		elapsed := time.Since(start)
		return float64(elapsed.Nanoseconds()) / programs, programs / elapsed.Seconds()
	}
	run(1, false, false) // warm the memoized registries and pipelines
	// Telemetry and coverage overheads are estimated from PAIRED runs:
	// each rep times an uninstrumented serial campaign and the
	// instrumented variants back to back, and the recorded overhead is
	// the median of the per-rep deltas. A single ~400ms wall-clock shot
	// swings by tens of percent with ambient load (one early record
	// pinned a bogus 28% "overhead" that profiling could not find
	// anywhere), and unpaired minima drift with load phases; pairing
	// cancels the drift.
	const telReps = 7
	var serialNs, serialPS, telNs, telPS, covNs, covPS float64
	deltas := make([]float64, 0, telReps)
	covDeltas := make([]float64, 0, telReps)
	for rep := 0; rep < telReps; rep++ {
		offNs, offPS := run(1, false, false)
		onNs, onPS := run(1, true, false)
		cNs, cPS := run(1, false, true)
		if rep == 0 || offNs < serialNs {
			serialNs, serialPS = offNs, offPS
		}
		if rep == 0 || onNs < telNs {
			telNs, telPS = onNs, onPS
		}
		if rep == 0 || cNs < covNs {
			covNs, covPS = cNs, cPS
		}
		deltas = append(deltas, (onNs-offNs)/offNs*100)
		covDeltas = append(covDeltas, (cNs-offNs)/offNs*100)
	}
	sort.Float64s(deltas)
	overheadPct := deltas[len(deltas)/2]
	sort.Float64s(covDeltas)
	covOverheadPct := covDeltas[len(covDeltas)/2]
	// Worker sweep: on a multi-core host programs/sec scales with
	// workers until cores are saturated; recorded per-count so a
	// single-core container's honest (flat) curve is distinguishable
	// from a scaling one by reading cpus.
	sweep := []map[string]any{}
	var parNs, parPS float64
	for _, workers := range []int{2, 4, 8} {
		ns, ps := run(workers, false, false)
		if workers == 8 {
			parNs, parPS = ns, ps
		}
		sweep = append(sweep, map[string]any{
			"workers": workers, "ns_per_program": ns, "programs_per_sec": ps,
			"speedup_vs_serial": ps / serialPS,
		})
	}
	// overheadPct was computed above from the paired reps: spans per
	// stage, counters per verdict, single atomic updates each — the
	// observability contract caps it at ~5%.
	unbNs, unbPS := runFamily(1, false)
	batNs, batPS := runFamily(1, true)
	sharedNs, naiveNs := runPlans(16)
	planNs, planPS := runPlanCampaign(1)
	// Fleet throughput: a real coordinator on localhost HTTP with N
	// worker loops leasing shards — the full wire protocol (gzip JSONL
	// uploads, heartbeats, seed-order merge) on the serial workload. On
	// a multi-core host aggregate programs/sec scales with workers; on
	// one CPU the curve is flat and the serial ratio is pure protocol
	// overhead (read cpus to tell which this record is).
	runFleet := func(nWorkers int) (nsPerProgram, programsPerSec float64) {
		cfg := difftest.CampaignConfig{
			Preset:   "ariths",
			Programs: programs,
			Size:     30,
			Seed:     1,
			Bugs:     bugs.None(),
		}
		coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{Campaign: cfg})
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < nWorkers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := fleet.RunWorker(context.Background(), fleet.WorkerConfig{
					Coordinator: "http://" + coord.Addr(),
					Campaign:    cfg,
					Workers:     1,
				}); err != nil {
					t.Error(err)
				}
			}()
		}
		res, err := coord.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		coord.DrainWorkers(5 * time.Second)
		wg.Wait()
		coord.Close()
		if res.Programs != programs {
			t.Fatalf("fleet campaign tested %d programs, want %d", res.Programs, programs)
		}
		return float64(elapsed.Nanoseconds()) / programs, programs / elapsed.Seconds()
	}
	fleetSweep := []map[string]any{}
	for _, nWorkers := range []int{1, 2, 4} {
		ns, ps := runFleet(nWorkers)
		fleetSweep = append(fleetSweep, map[string]any{
			"workers": nWorkers, "ns_per_program": ns, "programs_per_sec": ps,
			"speedup_vs_serial": ps / serialPS,
		})
	}
	record := map[string]any{
		"benchmark": "campaign",
		"preset":    "ariths",
		"size":      30,
		"programs":  programs,
		"cpus":      runtime.NumCPU(),
		"serial": map[string]any{
			"workers": 1, "ns_per_program": serialNs, "programs_per_sec": serialPS,
		},
		"parallel": map[string]any{
			"workers": 8, "ns_per_program": parNs, "programs_per_sec": parPS,
		},
		"workers_sweep": sweep,
		"speedup":       parPS / serialPS,
		"telemetry": map[string]any{
			"workers": 1, "ns_per_program": telNs, "programs_per_sec": telPS,
			"overhead_pct_vs_serial": overheadPct,
		},
		"coverage": map[string]any{
			"workers": 1, "ns_per_program": covNs, "programs_per_sec": covPS,
			"overhead_pct_vs_serial": covOverheadPct,
		},
		"family": map[string]any{
			"family_size":                  4,
			"unbatched":                    map[string]any{"ns_per_program": unbNs, "programs_per_sec": unbPS},
			"batched":                      map[string]any{"ns_per_program": batNs, "programs_per_sec": batPS},
			"batched_speedup_vs_unbatched": batPS / unbPS,
		},
		"pipeline_fuzz": map[string]any{
			"plans":                   16,
			"shared_compile":          map[string]any{"ns_per_program": sharedNs},
			"naive_compile":           map[string]any{"ns_per_program": naiveNs},
			"shared_speedup_vs_naive": naiveNs / sharedNs,
			"campaign": map[string]any{
				"workers": 1, "ns_per_program": planNs, "programs_per_sec": planPS,
			},
		},
		"fleet": map[string]any{
			"transport":     "localhost http, gzip jsonl shard uploads",
			"workers_sweep": fleetSweep,
		},
	}
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_campaign.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("serial: %.0f ns/program (%.1f programs/sec); parallel x8: %.0f ns/program (%.1f programs/sec); telemetry overhead: %.2f%%; coverage overhead: %.2f%%",
		serialNs, serialPS, parNs, parPS, overheadPct, covOverheadPct)
}

// BenchmarkCompilePipeline measures full preset pipelines (the cost of
// one differential-testing compilation).
func BenchmarkCompilePipeline(b *testing.B) {
	for _, preset := range gen.Presets() {
		preset := preset
		b.Run(preset, func(b *testing.B) {
			p, err := gen.Generate(gen.Config{Preset: preset, Size: 40, Seed: 12})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ratte.Compile(p.Module, preset, 1, ratte.NoBugs()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
