// Package ratte is the public API of Ratte-Go, a from-scratch Go
// reproduction of "Ratte: Fuzzing for Miscompilations in Multi-Level
// Compilers Using Composable Semantics" (ASPLOS 2025).
//
// Ratte couples two artefacts that validate each other (the paper's
// "harmonious cycle"):
//
//   - composable reference interpreters for MLIR-style dialects
//     (arith, func, scf, vector, tensor, linalg), assembled from
//     per-dialect semantic kernels; and
//   - semantics-guided program generators whose every extension is
//     evaluated incrementally, so generated programs are statically
//     valid and dynamically free of undefined behaviour by
//     construction.
//
// Those programs drive differential testing of a multi-level compiler
// (this module ships one, structurally mirroring the production MLIR
// pipeline, complete with the paper's eight re-injectable bugs), which
// is how miscompilations — not just crashes — become detectable.
//
// Typical use:
//
//	p, _ := ratte.Generate(ratte.GenConfig{Preset: "ariths", Size: 30, Seed: 1})
//	fmt.Print(ratte.PrintModule(p.Module))   // the program
//	fmt.Print(p.Expected)                    // its expected output
//
//	rep := ratte.Test(p.Module, p.Expected, "ariths", ratte.AllBugs())
//	if oracle := rep.Detected(); oracle != ratte.OracleNone {
//		fmt.Println("found a compiler bug via", oracle)
//	}
package ratte

import (
	"context"
	"net/http"

	"ratte/internal/bugs"
	"ratte/internal/compiler"
	"ratte/internal/conformance"
	"ratte/internal/dialects"
	"ratte/internal/difftest"
	"ratte/internal/fleet"
	"ratte/internal/faultinject"
	"ratte/internal/gen"
	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/mlirsmith"
	"ratte/internal/mutate"
	"ratte/internal/reduce"
	"ratte/internal/telemetry"
	"ratte/internal/verify"
)

// Core IR types.
type (
	// Module is an IR module (a tree of operations, regions and blocks).
	Module = ir.Module
	// Operation is a single IR operation.
	Operation = ir.Operation
)

// Generation.
type (
	// GenConfig parameterises the semantics-guided generator.
	GenConfig = gen.Config
	// Program is a generated test case with its expected output.
	Program = gen.Program
	// SmithConfig parameterises the MLIRSmith baseline generator.
	SmithConfig = mlirsmith.Config
)

// Differential testing.
type (
	// Report is one program's differential-testing record.
	Report = difftest.Report
	// Oracle names the oracle that detected a difference.
	Oracle = difftest.Oracle
	// CampaignConfig drives a fuzzing campaign.
	CampaignConfig = difftest.CampaignConfig
	// CampaignResult summarises a campaign.
	CampaignResult = difftest.CampaignResult
	// Verdict is one seed's final, journaled campaign outcome.
	Verdict = difftest.Verdict
	// FaultSpec configures deterministic fault injection for a campaign.
	FaultSpec = faultinject.Spec
	// NetFaultSpec configures deterministic network fault injection
	// for a fleet worker's HTTP transport.
	NetFaultSpec = faultinject.NetSpec
	// NetFaultTransport is a seeded fault-injecting http.RoundTripper.
	NetFaultTransport = faultinject.Transport
	// Journal is an append-only campaign verdict log (see CreateJournal).
	Journal = difftest.Journal
	// BugSet selects injected compiler defects.
	BugSet = bugs.Set
	// BugID identifies one of the paper's Table 3 defects.
	BugID = bugs.ID
	// OptLevel is a compiler optimisation level (O0/O1/O2).
	OptLevel = compiler.OptLevel
)

// The oracles of the paper's §3.4.
const (
	OracleNone = difftest.OracleNone
	OracleNC   = difftest.OracleNC
	OracleDTO  = difftest.OracleDTO
	OracleDTR  = difftest.OracleDTR
)

// ParseModule parses the generic textual format.
func ParseModule(src string) (*Module, error) { return ir.Parse(src) }

// PrintModule renders a module in the generic textual format.
func PrintModule(m *Module) string { return ir.Print(m) }

// VerifyModule checks a module against the source-dialect static rules
// (the frontend verifier).
func VerifyModule(m *Module) error {
	return verify.Module(m, dialects.SourceSpecs())
}

// InterpResult is the outcome of reference interpretation.
type InterpResult = interp.Result

// Interpret runs the composable reference interpreter on a module,
// calling the entry function. It returns an error for statically broken
// modules, undefined behaviour or runtime traps (use IsUB/IsTrap to
// classify).
func Interpret(m *Module, entry string) (*InterpResult, error) {
	return dialects.NewReferenceInterpreter().Run(m, entry)
}

// IsUB reports whether an interpretation error stems from undefined
// behaviour.
func IsUB(err error) bool { return interp.IsUB(err) }

// IsTrap reports whether an interpretation error is a deterministic
// runtime trap.
func IsTrap(err error) bool { return interp.IsTrap(err) }

// Generate builds one statically-valid, UB-free program with the
// semantics-guided generator.
func Generate(cfg GenConfig) (*Program, error) { return gen.Generate(cfg) }

// GeneratePresets lists the generator presets (paper Table 2).
func GeneratePresets() []string { return gen.Presets() }

// GenerateSmith builds one program with the MLIRSmith-style baseline —
// syntactically valid only.
func GenerateSmith(cfg SmithConfig) (*Module, error) { return mlirsmith.Generate(cfg) }

// Compile lowers a module to the executable llvm level with the given
// preset pipeline, optimisation level and injected bugs (nil for the
// correct compiler).
func Compile(m *Module, preset string, level OptLevel, bugSet BugSet) (*Module, error) {
	c := &compiler.Compiler{Level: level, Bugs: bugSet}
	return c.Compile(m, preset)
}

// Execute runs a lowered module under the target-level executor (the
// mlir-cpu-runner stand-in).
func Execute(m *Module, entry string) (*InterpResult, error) {
	return dialects.NewExecutor().Run(m, entry)
}

// Test differentially tests one UB-free module across every build
// configuration of a (possibly bug-injected) compiler.
func Test(m *Module, expected, preset string, bugSet BugSet) *Report {
	return difftest.TestModule(m, expected, preset, bugSet)
}

// RunCampaign generates and differentially tests programs.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	return difftest.RunCampaign(cfg)
}

// RunCampaignParallel is RunCampaign across worker goroutines, with
// results deterministic regardless of worker count.
func RunCampaignParallel(cfg CampaignConfig, workers int) (*CampaignResult, error) {
	return difftest.RunCampaignParallel(cfg, workers)
}

// RunCampaignCtx is RunCampaign under a caller context: cancellation
// stops the campaign after the in-flight seed and returns the partial,
// journaled result with ctx.Err().
func RunCampaignCtx(ctx context.Context, cfg CampaignConfig) (*CampaignResult, error) {
	return difftest.RunCampaignCtx(ctx, cfg)
}

// RunCampaignParallelCtx is RunCampaignParallel under a caller context.
func RunCampaignParallelCtx(ctx context.Context, cfg CampaignConfig, workers int) (*CampaignResult, error) {
	return difftest.RunCampaignParallelCtx(ctx, cfg, workers)
}

// CreateJournal starts a fresh campaign journal at path.
func CreateJournal(path string, cfg CampaignConfig) (*Journal, error) {
	return difftest.CreateJournal(path, cfg)
}

// OpenJournalForResume reads a campaign journal (recovering a torn
// final line) and returns it reopened for appending together with the
// recorded verdicts for CampaignConfig.Resumed.
func OpenJournalForResume(path string, cfg CampaignConfig) (*Journal, map[int64]Verdict, error) {
	return difftest.OpenJournalForResume(path, cfg)
}

// CampaignReport renders a campaign result as the canonical
// deterministic text summary.
func CampaignReport(res *CampaignResult) string { return difftest.ReportText(res) }

// ReduceModule shrinks a module while pred keeps holding.
func ReduceModule(m *Module, pred func(*Module) bool) *Module {
	return reduce.Module(m, pred)
}

// Mutate applies up to n semantics-preserving mutations to a clone of m
// (metamorphic testing: a compiled mutant must behave like the compiled
// original). Returns the mutant and the rule names applied.
func Mutate(m *Module, seed int64, n int) (*Module, []string) {
	return mutate.Mutate(m, seed, n)
}

// Plan fuzzing: the phase-ordering axis. A Plan is one legal pass
// pipeline; SamplePlans draws seeded random legal plans around the
// preset's mandatory lowering skeleton, and a campaign with
// CampaignConfig.Plans set (the -fuzz-pipelines flag) tests every
// program under each of them through a shared prefix tree.
type (
	// Plan is one compilation pass plan (preset + ordered pass list).
	Plan = compiler.Plan
	// PassMeta is one pass's plan constraints (mandatory stage,
	// requires/invalidated-by, occurrence cap, idempotence).
	PassMeta = compiler.PassMeta
	// PlanReport is one program's differential record across a plan set.
	PlanReport = difftest.PlanReport
)

// OracleDTP is the cross-plan differential oracle (two legal plans
// over the same program disagree).
const OracleDTP = difftest.OracleDTP

// PassMetadata returns a pass's plan constraints; ok is false for
// unknown passes.
func PassMetadata(name string) (PassMeta, bool) { return compiler.PassMetadata(name) }

// PlanSkeleton returns a preset's mandatory lowering stages in order —
// the minimal legal plan.
func PlanSkeleton(preset string) ([]string, error) { return compiler.PlanSkeleton(preset) }

// SamplePlans draws n distinct legal plans for a preset from a seeded
// sampler; plan 0 is always the bare skeleton.
func SamplePlans(preset string, n int, seed int64) ([]Plan, error) {
	return compiler.SamplePlans(preset, n, seed)
}

// ValidatePlan checks a plan against the pass-metadata registry
// (skeleton completeness and order, occurrence caps, requires/
// invalidated-by constraints, fused pairs). It is the lint behind the
// sampler's legality guarantee.
func ValidatePlan(p Plan) error { return compiler.ValidatePlan(p) }

// ShrinkPlan greedily minimizes a plan while pred keeps holding;
// mandatory stages are never dropped, so every candidate is legal.
func ShrinkPlan(p Plan, pred func(Plan) bool) Plan { return compiler.ShrinkPlan(p, pred) }

// TestPlans differentially tests one UB-free module under every plan
// of a (possibly bug-injected) compiler build, sharing common pipeline
// prefixes.
func TestPlans(m *Module, expected string, plans []Plan, bugSet BugSet) *PlanReport {
	return difftest.TestModulePlans(m, expected, plans, bugSet)
}

// ReduceProgramPlan minimizes a failing (program, plan) pair on both
// axes while pred keeps holding.
func ReduceProgramPlan(m *Module, p Plan, pred func(*Module, Plan) bool) (*Module, Plan) {
	return reduce.ProgramPlan(m, p, pred)
}

// Conformance: the property-testing harness that keeps the substrate's
// own oracles trustworthy (find → minimize → regress).
type (
	// ConformanceOracle is one property over modules: generate (or
	// take) a module, check the property, report a structured
	// counterexample.
	ConformanceOracle = conformance.Oracle
	// ConformanceConfig drives a conformance run (trial count, seed
	// schedule, shrinking, corpus persistence).
	ConformanceConfig = conformance.Config
	// ConformanceResult summarises a conformance run.
	ConformanceResult = conformance.Result
	// Counterexample is a minimized property violation.
	Counterexample = conformance.Counterexample
	// Regression is a persisted counterexample in the replayable
	// corpus under testdata/regressions/.
	Regression = conformance.Regression
)

// ConformanceOracles returns the standard oracle battery: print/parse
// round-trip, verifier idempotence, per-pass-prefix semantic
// equivalence (every preset × optimisation level), metamorphic mutation
// equivalence, correct-build differential testing, serial-vs-parallel
// campaign agreement, and the plan-legality and plan-equivalence
// properties of the plan fuzzer.
func ConformanceOracles() []ConformanceOracle { return conformance.StandardOracles() }

// ConformanceOracleNames lists the standard oracles' names, sorted.
func ConformanceOracleNames() []string { return conformance.OracleNames() }

// LookupConformanceOracle reconstructs an oracle from its name (e.g.
// "prefix-equivalence/tensor/O2").
func LookupConformanceOracle(name string) (ConformanceOracle, error) {
	return conformance.Lookup(name)
}

// RunConformance drives one oracle over a deterministic seed schedule,
// auto-shrinking and (optionally) persisting counterexamples.
func RunConformance(o ConformanceOracle, cfg ConformanceConfig) (*ConformanceResult, error) {
	return conformance.Run(o, cfg)
}

// ReplayRegressions re-checks every stored regression under dir,
// returning the corpus and any violations.
func ReplayRegressions(dir string) ([]*Regression, []error) {
	return conformance.ReplayCorpus(dir)
}

// Observability: the campaign telemetry layer (metrics registry, stage
// tracing, live introspection). Attaching telemetry never changes a
// campaign's results — reports are byte-identical with it on or off.
type (
	// CampaignTelemetry instruments one campaign; attach it via
	// CampaignConfig.Telemetry and export via its Registry.
	CampaignTelemetry = difftest.CampaignTelemetry
	// MetricsRegistry holds named counters, gauges and histograms and
	// renders them as Prometheus text or a JSON snapshot.
	MetricsRegistry = telemetry.Registry
)

// NewCampaignTelemetry builds the campaign instrument bundle on reg (a
// fresh private registry when reg is nil).
func NewCampaignTelemetry(reg *MetricsRegistry) *CampaignTelemetry {
	return difftest.NewCampaignTelemetry(reg)
}

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// ServeMetrics starts an HTTP introspection endpoint (Prometheus
// /metrics, JSON /debug/vars, the pprof suite) on addr over reg; close
// the returned server when done.
func ServeMetrics(addr string, reg *MetricsRegistry) (*telemetry.Server, error) {
	return telemetry.Serve(addr, reg)
}

// NoBugs returns the correct-compiler selection.
func NoBugs() BugSet { return bugs.None() }

// AllBugs returns every Table 3 defect enabled.
func AllBugs() BugSet { return bugs.All() }

// Bugs returns a selection with exactly the given defects enabled.
func Bugs(ids ...BugID) BugSet { return bugs.Only(ids...) }

// BugTable returns the paper's Table 3 inventory.
func BugTable() []bugs.Info { return bugs.Table() }

// SupportedOps returns the source-dialect operation inventory (the
// paper's 43 operations across core dialects).
func SupportedOps() []string { return dialects.SupportedSourceOps() }

// Fleet: the distributed campaign layer (internal/fleet). A
// coordinator partitions a campaign's seed space into shards and
// leases them over HTTP to worker processes; the merged report is
// byte-identical to a single-process run of the same configuration.
type (
	// FleetCoordinatorConfig configures a campaign coordinator.
	FleetCoordinatorConfig = fleet.CoordinatorConfig
	// FleetCoordinator serves shard leases and merges verdict streams.
	FleetCoordinator = fleet.Coordinator
	// FleetWorkerConfig configures one shard worker.
	FleetWorkerConfig = fleet.WorkerConfig
	// FleetWorkerStats summarises one worker's run.
	FleetWorkerStats = fleet.WorkerStats
)

// NewFleetCoordinator partitions a campaign into shards and prepares
// the fleet control plane; Start it on an address, then Wait for the
// merged result.
func NewFleetCoordinator(cfg FleetCoordinatorConfig) (*FleetCoordinator, error) {
	return fleet.NewCoordinator(cfg)
}

// RunFleetWorker leases and runs shards from a coordinator until the
// campaign completes or ctx is cancelled.
func RunFleetWorker(ctx context.Context, cfg FleetWorkerConfig) (FleetWorkerStats, error) {
	return fleet.RunWorker(ctx, cfg)
}

// NewNetFaultTransport wraps an http.RoundTripper (nil = the default
// transport) with seeded, deterministic network fault injection —
// refused connections, delays, injected 5xx, torn bodies, duplicated
// deliveries — for chaos-testing fleet workers.
func NewNetFaultTransport(spec NetFaultSpec, inner http.RoundTripper) *NetFaultTransport {
	return faultinject.NewTransport(spec, inner)
}

// RunCampaignRange runs the seed-index window [first, first+count) of
// a campaign and returns its verdicts in seed order — the worker half
// of a distributed campaign.
func RunCampaignRange(ctx context.Context, cfg CampaignConfig, first, count, workers int) ([]Verdict, error) {
	return difftest.RunCampaignRange(ctx, cfg, first, count, workers)
}

// CampaignFingerprint renders the configuration fingerprint a journal
// stores on line 1 and a fleet registration validates against.
func CampaignFingerprint(cfg CampaignConfig) ([]byte, error) {
	return difftest.CampaignFingerprint(cfg)
}
