module ratte

go 1.22
