package ratte_test

import (
	"fmt"
	"os"
	"testing"

	"ratte"
	"ratte/internal/bugs"
	"ratte/internal/difftest"
)

// TestReducedBugFiles reproduces the paper artifact's A.5.2 flow: the
// bugs/ directory holds one reduced test case per Table 3 bug, and each
// file, run against a compiler with (exactly) that bug injected,
// triggers the oracle the paper credits. Against the correct compiler
// every file passes cleanly.
func TestReducedBugFiles(t *testing.T) {
	for _, info := range bugs.Table() {
		info := info
		t.Run(fmt.Sprintf("%d.mlir", int(info.ID)), func(t *testing.T) {
			src, err := os.ReadFile(fmt.Sprintf("testdata/bugs/%d.mlir", int(info.ID)))
			if err != nil {
				t.Fatal(err)
			}
			m, err := ratte.ParseModule(string(src))
			if err != nil {
				t.Fatal(err)
			}
			if err := ratte.VerifyModule(m); err != nil {
				t.Fatalf("reduced case is statically invalid: %v", err)
			}
			ref, err := ratte.Interpret(m, "main")
			if err != nil {
				t.Fatalf("reduced case is not UB-free: %v", err)
			}

			// Correct compiler: clean.
			clean := ratte.Test(m, ref.Output, "ariths", ratte.NoBugs())
			if clean.Detected() != ratte.OracleNone {
				t.Fatalf("correct compiler flagged by %s", clean.Detected())
			}

			// Buggy compiler: the paper's oracle fires.
			rep := ratte.Test(m, ref.Output, "ariths", ratte.Bugs(info.ID))
			if got := rep.Detected(); got != difftest.Oracle(info.Oracle) {
				t.Errorf("detected by %q, paper says %q (levels: %+v)",
					got, info.Oracle, rep.Levels)
			}
		})
	}
}
