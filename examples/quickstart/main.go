// Quickstart: generate a random, UB-free MLIR program; interpret it
// with the reference semantics; compile it to the llvm target at every
// optimisation level; execute; and check that everything agrees.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ratte"
	"ratte/internal/compiler"
)

func main() {
	// 1. Generate a program with the semantics-guided fuzzer. The
	// generator evaluates every operation as it emits it, so the
	// expected output comes back alongside the program.
	p, err := ratte.Generate(ratte.GenConfig{Preset: "ariths", Size: 15, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== generated program ===")
	fmt.Println(ratte.PrintModule(p.Module))
	fmt.Println("=== expected output (computed during generation) ===")
	fmt.Print(p.Expected)

	// 2. The reference interpreter must agree.
	res, err := ratte.Interpret(p.Module, "main")
	if err != nil {
		log.Fatal("reference interpretation failed: ", err)
	}
	if res.Output != p.Expected {
		log.Fatalf("reference disagrees!\ngot:  %q\nwant: %q", res.Output, p.Expected)
	}
	fmt.Println("=== reference interpreter agrees ===")

	// 3. Compile at each optimisation level with the CORRECT compiler
	// and execute; outputs must match the reference.
	for _, level := range []ratte.OptLevel{compiler.O0, compiler.O1, compiler.O2} {
		lowered, err := ratte.Compile(p.Module, "ariths", level, ratte.NoBugs())
		if err != nil {
			log.Fatalf("O%d: compile: %v", int(level), err)
		}
		out, err := ratte.Execute(lowered, "main")
		if err != nil {
			log.Fatalf("O%d: execute: %v", int(level), err)
		}
		status := "agrees"
		if out.Output != p.Expected {
			status = "MISCOMPILATION?!"
		}
		fmt.Printf("O%d: compiled %d ops, output %s\n", int(level), lowered.NumOps(), status)
	}

	// 4. Now differential-test against a compiler with every paper bug
	// injected; with luck this program triggers one.
	rep := ratte.Test(p.Module, p.Expected, "ariths", ratte.AllBugs())
	if oracle := rep.Detected(); oracle != ratte.OracleNone {
		fmt.Printf("buggy compiler detected by the %s oracle\n", oracle)
	} else {
		fmt.Println("this particular program does not trigger any injected bug — fuzz more!")
	}
}
