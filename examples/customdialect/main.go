// Customdialect demonstrates the composability claim of the paper: a
// brand-new dialect gets executable semantics and static rules in a few
// dozen lines, WITHOUT modifying any existing dialect — and composes
// with the stock dialects into a working interpreter.
//
// The example defines a toy "stats" dialect with two operations:
//
//	stats.sum    — sum of all elements of a tensor
//	stats.argmax — index of the (first) maximal element
//
// Run with:
//
//	go run ./examples/customdialect
package main

import (
	"fmt"
	"log"

	"ratte/internal/dialects"
	"ratte/internal/interp"
	"ratte/internal/ir"
	"ratte/internal/rtval"
	"ratte/internal/verify"
)

// statsSemantics builds the interpreter kernels for the stats dialect —
// the analogue of one `Semantics()` function in any stock dialect
// package.
func statsSemantics() *interp.Dialect {
	d := interp.NewDialect("stats")

	d.Register("stats.sum", func(ctx *interp.Context, op *ir.Operation) error {
		t, err := ctx.GetTensor(op.Operands[0])
		if err != nil {
			return err
		}
		w, _ := ir.BitWidth(t.Elem)
		acc := rtval.NewInt(w, 0)
		for _, e := range t.Elems {
			acc = acc.Add(e)
		}
		return ctx.Define(op.Results[0], acc)
	})

	d.Register("stats.argmax", func(ctx *interp.Context, op *ir.Operation) error {
		t, err := ctx.GetTensor(op.Operands[0])
		if err != nil {
			return err
		}
		if len(t.Elems) == 0 {
			return &rtval.TrapError{Op: "stats.argmax", Reason: "empty tensor"}
		}
		best := 0
		for i, e := range t.Elems {
			if e.Signed() > t.Elems[best].Signed() {
				best = i
			}
		}
		return ctx.Define(op.Results[0], rtval.NewIndex(int64(best)))
	})

	return d
}

// statsSpecs builds the static rules — the analogue of `Specs()`.
func statsSpecs() verify.Registry {
	tensorIn := func(c *verify.Checker, op *ir.Operation) error {
		if err := verify.WantOperands(op, 1); err != nil {
			return err
		}
		if _, ok := op.Operands[0].Type.(ir.TensorType); !ok {
			return verify.Errf(op, "operand must be a tensor")
		}
		return verify.WantResults(op, 1)
	}
	return verify.Registry{
		"stats.sum":    {Check: tensorIn},
		"stats.argmax": {Check: tensorIn},
	}
}

const program = `"builtin.module"() ({
  "func.func"() ({
    %t = "arith.constant"() {value = dense<[3, 1, 4, 1, 5, 9, 2, 6]> : tensor<8xi64>} : () -> (tensor<8xi64>)
    %sum = "stats.sum"(%t) : (tensor<8xi64>) -> (i64)
    %am = "stats.argmax"(%t) : (tensor<8xi64>) -> (index)
    "vector.print"(%sum) : (i64) -> ()
    "vector.print"(%am) : (index) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`

func main() {
	m, err := ir.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	// Compose the static rules: stock dialects + stats. Merging is the
	// whole integration step.
	specs := verify.Merge(dialects.SourceSpecs(), statsSpecs())
	if err := verify.Module(m, specs); err != nil {
		log.Fatal("verification failed: ", err)
	}
	fmt.Println("module verifies with the composed rule set")

	// Compose the interpreter: stock kernels + stats kernels.
	in := interp.New(append(dialects.Source(), statsSemantics())...)
	res, err := in.Run(m, "main")
	if err != nil {
		log.Fatal("interpretation failed: ", err)
	}
	fmt.Print(res.Output) // 31 and 5
	fmt.Println("the stats dialect ran inside the stock interpreter — no existing dialect changed")
}
