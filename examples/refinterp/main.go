// Refinterp uses the validated reference semantics as a standalone
// library interpreter (the paper's §4.3 by-product: "a composable
// reference implementation … which can help both developers and users
// of MLIR"): it interprets the paper's two figure programs and explains
// what each one must compute.
//
// Run with:
//
//	go run ./examples/refinterp
package main

import (
	"fmt"
	"log"

	"ratte"
)

// figure2 is the paper's Figure 2: mulsi_extended(-1, -1) on i1. The
// low half of the 2-bit product 0b01 is 1 (prints -1 as a signed i1);
// the high half is 0. The production compiler miscompiled the high
// half to -1.
const figure2 = `"builtin.module"() ({
  "func.func"() ({
    %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
    %0 = "func.call"() {callee = @one} : () -> (i1)
    %low, %high = "arith.mulsi_extended"(%0, %n1) : (i1, i1) -> (i1, i1)
    "vector.print"(%low) : (i1) -> ()
    "vector.print"(%high) : (i1) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %n1 = "arith.constant"() {value = -1 : i1} : () -> (i1)
    "func.return"(%n1) : (i1) -> ()
  }) {sym_name = "one", function_type = () -> (i1)} : () -> ()
}) : () -> ()`

// figure12 is the paper's Figure 12: (-2^63 + 1) floordiv -1, which a
// correct compiler must evaluate to 2^63 - 1 (the production lowering
// produced an undefined value).
const figure12 = `"builtin.module"() ({
  "func.func"() ({
    %cm, %cn1 = "func.call"() {callee = @func1} : () -> (i64, i64)
    %1 = "arith.floordivsi"(%cm, %cn1) : (i64, i64) -> (i64)
    "vector.print"(%1) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %cm = "arith.constant"() {value = -9223372036854775807 : i64} : () -> (i64)
    %cn1 = "arith.constant"() {value = -1 : i64} : () -> (i64)
    "func.return"(%cm, %cn1) : (i64, i64) -> ()
  }) {sym_name = "func1", function_type = () -> (i64, i64)} : () -> ()
}) : () -> ()`

// divByZero shows the interpreter rejecting UB rather than inventing a
// value.
const divByZero = `"builtin.module"() ({
  "func.func"() ({
    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %q = "arith.divsi"(%a, %z) : (i64, i64) -> (i64)
    "vector.print"(%q) : (i64) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
}) : () -> ()`

func run(name, src string) {
	fmt.Printf("--- %s ---\n", name)
	m, err := ratte.ParseModule(src)
	if err != nil {
		log.Fatal(err)
	}
	if err := ratte.VerifyModule(m); err != nil {
		log.Fatal(err)
	}
	res, err := ratte.Interpret(m, "main")
	switch {
	case err == nil:
		fmt.Print(res.Output)
	case ratte.IsUB(err):
		fmt.Println("rejected: undefined behaviour —", err)
	case ratte.IsTrap(err):
		fmt.Println("rejected: runtime trap —", err)
	default:
		log.Fatal(err)
	}
}

func main() {
	run("paper Figure 2 (expected: -1 then 0)", figure2)
	run("paper Figure 12 (expected: 9223372036854775807)", figure12)
	run("division by zero (expected: UB rejection)", divByZero)
}
