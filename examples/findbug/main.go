// Findbug re-enacts the paper's Figure 12 discovery end to end: a
// fuzzing campaign against a compiler with bug 7 injected (the
// arith-expand floordivsi lowering whose intermediate computes
// -2^63 / -1), followed by automatic test-case reduction — arriving at
// a program of the same shape as the paper's reduced figure.
//
// Run with:
//
//	go run ./examples/findbug
package main

import (
	"fmt"
	"log"

	"ratte"
	"ratte/internal/bugs"
)

func main() {
	buggy := ratte.Bugs(bugs.FloorDivSiExpand)

	fmt.Println("fuzzing a compiler with bug 7 (arith-expand floordivsi) injected…")
	res, err := ratte.RunCampaign(ratte.CampaignConfig{
		Preset:      "ariths",
		Programs:    2000,
		Size:        30,
		Seed:        7000,
		Bugs:        buggy,
		StopAtFirst: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Detections) == 0 {
		log.Fatalf("no detection in %d programs — raise the budget", res.Programs)
	}
	d := res.Detections[0]
	fmt.Printf("detected after %d programs by the %s oracle (paper: NC for the trapping case)\n",
		res.Programs, d.Oracle)

	// Reduce while the same oracle keeps firing.
	pred := func(m *ratte.Module) bool {
		ref, err := ratte.Interpret(m, "main")
		if err != nil {
			return false
		}
		return ratte.Test(m, ref.Output, "ariths", buggy).Detected() == d.Oracle
	}
	small := ratte.ReduceModule(d.Program, pred)
	fmt.Printf("reduced from %d to %d operations\n", d.Program.NumOps(), small.NumOps())
	fmt.Println("=== reduced test case (compare paper Figure 12) ===")
	fmt.Println(ratte.PrintModule(small))

	ref, err := ratte.Interpret(small, "main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference semantics say the output should be:\n%s", ref.Output)

	rep := ratte.Test(small, ref.Output, "ariths", buggy)
	fmt.Println("buggy compiler behaviour per build configuration:")
	for cfg, lr := range rep.Levels {
		switch {
		case lr.CompileErr != nil:
			fmt.Printf("  %-12s rejected: %v\n", cfg, lr.CompileErr)
		case lr.RunErr != nil:
			fmt.Printf("  %-12s crashed: %v\n", cfg, lr.RunErr)
		default:
			fmt.Printf("  %-12s printed %q\n", cfg, lr.Output)
		}
	}
}
