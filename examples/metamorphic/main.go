// Metamorphic demonstrates the future-work direction the paper's
// Related Work sketches: testing the compiler WITHOUT the reference
// interpreter, by compiling semantics-preserving mutants of a program
// and comparing their outputs to the original's. A divergence means the
// compiler treated two equivalent programs differently — a
// miscompilation — with no hand-written semantics in the loop.
//
// Run with:
//
//	go run ./examples/metamorphic
package main

import (
	"fmt"
	"log"

	"ratte"
	"ratte/internal/bugs"
	"ratte/internal/compiler"
)

func main() {
	// A compiler with bug 2 injected (the index_cast chain fold that
	// drops a truncation).
	buggy := ratte.Bugs(bugs.IndexCastChainFold)
	compile := func(m *ratte.Module) (string, error) {
		lowered, err := ratte.Compile(m, "ariths", compiler.O1, buggy)
		if err != nil {
			return "", err
		}
		res, err := ratte.Execute(lowered, "main")
		if err != nil {
			return "", err
		}
		return res.Output, nil
	}

	// Part 1 — deterministic demonstration on a program containing the
	// pattern bug 2 miscompiles: a round-trip index_cast chain fed by an
	// opaque call.
	const chain = `"builtin.module"() ({
  "func.func"() ({
    %big = "func.call"() {callee = @c} : () -> (index)
    %n = "arith.index_cast"(%big) : (index) -> (i8)
    %back = "arith.index_cast"(%n) : (i8) -> (index)
    "vector.print"(%back) : (index) -> ()
    "func.return"() : () -> ()
  }) {sym_name = "main", function_type = () -> ()} : () -> ()
  "func.func"() ({
    %a = "arith.constant"() {value = 300 : index} : () -> (index)
    "func.return"(%a) : (index) -> ()
  }) {sym_name = "c", function_type = () -> (index)} : () -> ()
}) : () -> ()`
	m, err := ratte.ParseModule(chain)
	if err != nil {
		log.Fatal(err)
	}
	origOut, err := compile(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original (buggy compiler) prints: %q\n", origOut)

	found := false
	for seed := int64(0); seed < 100 && !found; seed++ {
		mutant, applied := ratte.Mutate(m, seed, 3)
		if len(applied) == 0 {
			continue
		}
		mutOut, err := compile(mutant)
		if err != nil {
			continue
		}
		if mutOut != origOut {
			found = true
			fmt.Printf("mutant (mutations %v) prints:      %q\n", applied, mutOut)
			fmt.Println("equivalent programs, different outputs — a miscompilation,")
			fmt.Println("exposed WITHOUT consulting the reference semantics.")
			fmt.Printf("(the reference semantics confirm: correct output is %q)\n", mustRef(m))
		}
	}
	if !found {
		log.Fatal("demonstration failed: no mutant diverged")
	}

	// Part 2 — random metamorphic campaign over generated programs
	// (most pairs agree; chains like the one above are what diverge).
	pairs, divergences := 0, 0
	for seed := int64(0); seed < 120; seed++ {
		p, err := ratte.Generate(ratte.GenConfig{Preset: "ariths", Size: 25, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		origOut, err := compile(p.Module)
		if err != nil {
			continue
		}
		for ms := int64(0); ms < 3; ms++ {
			mutant, applied := ratte.Mutate(p.Module, seed*17+ms, 5)
			if len(applied) == 0 {
				continue
			}
			mutOut, err := compile(mutant)
			if err != nil {
				continue
			}
			pairs++
			if mutOut != origOut {
				divergences++
			}
		}
	}
	fmt.Printf("random campaign: compared %d program/mutant pairs, %d divergence(s)\n", pairs, divergences)
}

func mustRef(m *ratte.Module) string {
	res, err := ratte.Interpret(m, "main")
	if err != nil {
		log.Fatal(err)
	}
	return res.Output
}
